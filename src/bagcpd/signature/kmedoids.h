// k-medoids quantizer (PAM-style BUILD + SWAP), the second quantization
// option named in paper Section 3.1. Medoids are actual bag points, which is
// preferable when centroids of the data are not meaningful.

#ifndef BAGCPD_SIGNATURE_KMEDOIDS_H_
#define BAGCPD_SIGNATURE_KMEDOIDS_H_

#include <cstdint>

#include "bagcpd/common/flat_bag.h"
#include "bagcpd/common/point.h"
#include "bagcpd/common/result.h"
#include "bagcpd/signature/signature.h"

namespace bagcpd {

/// \brief Configuration for KMedoidsQuantize.
struct KMedoidsOptions {
  /// Requested number of medoids; clamped to the bag size.
  std::size_t k = 8;
  /// Maximum SWAP passes.
  int max_iterations = 20;
  /// When the bag is larger than this, SWAP candidates are subsampled to keep
  /// the quantizer O(n * sample) per pass instead of O(n^2).
  std::size_t swap_candidate_sample = 64;
  std::uint64_t seed = 0;
};

/// \brief k-medoids output.
struct KMedoidsResult {
  Signature signature;
  /// Indices into the bag of the chosen medoids.
  std::vector<std::size_t> medoid_indices;
  /// Sum of distances of points to their medoid.
  double total_deviation = 0.0;
};

/// \brief Clusters `bag` around k of its own points (Euclidean distance) and
/// returns medoids as centers with member counts as weights.
Result<KMedoidsResult> KMedoidsQuantize(BagView bag,
                                        const KMedoidsOptions& options,
                                        BufferArena* arena = nullptr);

/// \brief Same clustering, streaming the surviving (medoid, weight) pairs
/// into `sink` (sized for at least min(options.k, bag.size()) centers,
/// typically borrowed over a SignatureRing slot) instead of materializing a
/// Signature; the pairs are bitwise-identical to KMedoidsQuantize's.
Status KMedoidsQuantizeInto(BagView bag, const KMedoidsOptions& options,
                            BufferArena* arena, SignatureAssembler* sink);

/// \brief Nested-bag convenience: validates and flattens once, then runs the
/// view path. Output is bitwise-identical to the flat entry point.
Result<KMedoidsResult> KMedoidsQuantize(const Bag& bag,
                                        const KMedoidsOptions& options,
                                        BufferArena* arena = nullptr);

}  // namespace bagcpd

#endif  // BAGCPD_SIGNATURE_KMEDOIDS_H_
