// Lloyd's k-means with k-means++ seeding: the default quantizer turning a bag
// into a signature (paper Section 3.1). Operates on contiguous BagViews with
// flat center buffers — no per-point heap allocation in the hot loops.

#ifndef BAGCPD_SIGNATURE_KMEANS_H_
#define BAGCPD_SIGNATURE_KMEANS_H_

#include <cstdint>

#include "bagcpd/common/flat_bag.h"
#include "bagcpd/common/point.h"
#include "bagcpd/common/result.h"
#include "bagcpd/signature/signature.h"

namespace bagcpd {

/// \brief Configuration for KMeansQuantize.
struct KMeansOptions {
  /// Requested number of clusters; clamped to the bag size.
  std::size_t k = 8;
  /// Maximum Lloyd iterations.
  int max_iterations = 50;
  /// Convergence threshold on total squared center movement.
  double tolerance = 1e-7;
  /// Seed for the k-means++ initialization.
  std::uint64_t seed = 0;
};

/// \brief Full k-means output: assignments alongside the signature.
struct KMeansResult {
  Signature signature;
  /// assignment[i] is the cluster index of bag point i.
  std::vector<std::size_t> assignment;
  /// Final within-cluster sum of squared distances.
  double inertia = 0.0;
  /// Number of Lloyd iterations executed.
  int iterations = 0;
};

/// \brief Clusters `bag` into at most `options.k` groups and returns the
/// cluster centers as signature centers with member counts as weights.
///
/// Empty clusters are reseeded to the point farthest from its center, so the
/// returned signature always has strictly positive weights. Fails with
/// Invalid if the bag is empty.
///
/// With a non-null `arena` the signature's packed buffer and the per-call
/// scratch are drawn from (and recycled through) that arena; results are
/// bitwise-identical either way.
Result<KMeansResult> KMeansQuantize(BagView bag, const KMeansOptions& options,
                                    BufferArena* arena = nullptr);

/// \brief Same clustering, but the surviving (center, weight) pairs stream
/// into `sink` — a SignatureAssembler sized for at least min(options.k,
/// bag.size()) centers, typically in borrowed-buffer mode over a
/// SignatureRing slot — instead of materializing a Signature. The pairs are
/// bitwise-identical to the KMeansQuantize signature's. On error the sink
/// holds whatever was added so far; the caller abandons it.
Status KMeansQuantizeInto(BagView bag, const KMeansOptions& options,
                          BufferArena* arena, SignatureAssembler* sink);

/// \brief Nested-bag convenience: validates and flattens once, then runs the
/// view path. Output is bitwise-identical to the flat entry point.
Result<KMeansResult> KMeansQuantize(const Bag& bag,
                                    const KMeansOptions& options,
                                    BufferArena* arena = nullptr);

}  // namespace bagcpd

#endif  // BAGCPD_SIGNATURE_KMEANS_H_
