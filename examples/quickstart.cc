// Quickstart: detect a distribution change in a stream of bags.
//
// At every "day" we observe a bag of 2-d measurements whose count varies
// (Poisson). Halfway through, the generating distribution shifts. The
// detector scores each inspection point, bootstraps a confidence interval,
// and raises an alarm only when the Eq. 20 test fires — no manual threshold.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "bagcpd/bagcpd.h"

int main() {
  using namespace bagcpd;

  // 1) Synthesize a stream: 30 bags, mean jumps at t = 15.
  Rng rng(7);
  BagSequence stream;
  for (int t = 0; t < 30; ++t) {
    const GaussianMixture mix = GaussianMixture::Isotropic(
        t < 15 ? Point{0.0, 0.0} : Point{4.0, 0.0}, 1.0);
    stream.push_back(mix.SampleBag(static_cast<std::size_t>(rng.Poisson(60, 5)),
                                   &rng));
  }

  // 2) Configure the detector from a config string: tau / tau' windows,
  //    signature quantizer, bootstrap CI level — every component is
  //    addressable by its registry name ("kmeans", "skl", ...). Defaults
  //    reproduce the paper's setup. The same spec can also be built
  //    fluently: api::DetectorSpec().Tau(5).Quantizer("kmeans")...
  Result<api::DetectorSpec> spec = api::DetectorSpec::FromKeyValues(
      "tau=5,tau_prime=5,score=skl,replicates=300,alpha=0.05,"
      "quantizer=kmeans,k=8,seed=42");
  if (!spec.ok()) {
    std::fprintf(stderr, "bad spec: %s\n", spec.status().ToString().c_str());
    return 1;
  }

  // 3) Create() validates and fails with a typed Status instead of handing
  //    back a half-built detector.
  Result<std::unique_ptr<BagStreamDetector>> detector = spec->Create();
  if (!detector.ok()) {
    std::fprintf(stderr, "bad options: %s\n",
                 detector.status().ToString().c_str());
    return 1;
  }

  // 4) Stream the bags; a StepResult appears once the windows are full.
  std::printf("%-6s %-10s %-20s %-8s\n", "t", "score", "95%-CI", "alarm");
  for (std::size_t t = 0; t < stream.size(); ++t) {
    Result<std::optional<StepResult>> step = (*detector)->Push(stream[t]);
    if (!step.ok()) {
      std::fprintf(stderr, "push failed: %s\n", step.status().ToString().c_str());
      return 1;
    }
    if (!step.ValueOrDie().has_value()) continue;  // Warm-up.
    const StepResult& r = *step.ValueOrDie();
    std::printf("%-6llu %-10.4f [%8.4f, %8.4f] %s\n",
                static_cast<unsigned long long>(r.time), r.score, r.ci_lo,
                r.ci_up, r.alarm ? "ALARM" : "");
  }
  std::printf("\nThe change was planted at t = 15.\n");
  return 0;
}
