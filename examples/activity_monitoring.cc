// Activity monitoring (the paper's Section 5.2 scenario): wearable sensors
// sample at an irregular rate, the stream is cut into 10-second bags, and the
// detector flags the moments the wearer switches activity — without knowing
// the activity catalogue.

#include <cstdio>

#include "bagcpd/bagcpd.h"

int main() {
  using namespace bagcpd;

  PamapSimulatorOptions sim;
  sim.seed = 2026;
  sim.subject = 1;
  sim.sampling_hz = 50.0;          // Lighter than the real 100 Hz.
  sim.mean_bags_per_activity = 10.0;
  Result<PamapRecording> recording = SimulatePamapSubject(sim);
  if (!recording.ok()) {
    std::fprintf(stderr, "%s\n", recording.status().ToString().c_str());
    return 1;
  }
  const PamapRecording& rec = recording.ValueOrDie();
  std::printf("subject 1: %zu bags (10 s each), %zu activity transitions\n\n",
              rec.stream.bags.size(), rec.stream.change_points.size());

  Result<std::unique_ptr<BagStreamDetector>> detector =
      api::DetectorSpec()
          .Tau(5)
          .TauPrime(5)
          .Replicates(200)
          .Quantizer(SignatureMethod::kKMeans)
          .K(10)
          .Seed(3)
          .Create();
  if (!detector.ok()) {
    std::fprintf(stderr, "%s\n", detector.status().ToString().c_str());
    return 1;
  }
  Result<std::vector<StepResult>> results =
      (*detector)->Run(rec.stream.bags);
  if (!results.ok()) {
    std::fprintf(stderr, "%s\n", results.status().ToString().c_str());
    return 1;
  }

  // Report each alarm with the activity context around it.
  const auto& table = PamapActivityTable();
  auto activity_name = [&](int id) -> const char* {
    for (const PamapActivity& a : table) {
      if (a.id == id) return a.name.c_str();
    }
    return "?";
  };
  std::printf("alarms:\n");
  for (const StepResult& r : results.ValueOrDie()) {
    if (!r.alarm) continue;
    const std::size_t t = static_cast<std::size_t>(r.time);
    std::printf("  t=%3zu  score=%6.3f   %s -> %s\n", t, r.score,
                activity_name(rec.activity_ids[t > 0 ? t - 1 : 0]),
                activity_name(rec.activity_ids[t]));
  }

  const DetectionReport report =
      EvaluateAlarms(AlarmTimes(results.ValueOrDie()), rec.stream.change_points,
                     /*tolerance=*/4);
  std::printf("\nprecision %.2f, recall %.2f, mean delay %.1f bags\n",
              report.precision, report.recall, report.mean_delay);
  return 0;
}
