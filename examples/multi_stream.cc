// Multi-stream monitoring with the concurrent runtime.
//
// A fleet of sensors each emits a bag of 2-d readings per tick. The
// StreamEngine hash-routes every sensor to one shard worker, runs an
// independent detector per sensor, and delivers alarms through the typed
// event sink — the serving shape for monitoring many users/devices at once.
// Results are reproducible for a fixed engine seed no matter how many shards
// run. (Engines can also carry several named detector profiles —
// EngineSpec::Profile + Submit(key, bag, "profile") — to run differently
// configured streams side by side; this demo uses one.)
//
// Build & run:
//   cmake -B build && cmake --build build -j
//   ./build/example_multi_stream

#include <cstdio>
#include <mutex>
#include <string>

#include "bagcpd/bagcpd.h"

int main() {
  using namespace bagcpd;

  // 1) Engine: 4 shard workers, one small detector per stream key. Serving
  //    hygiene: a sensor silent for > 4096 engine-wide submissions is
  //    evicted and restarts fresh on its next bag, so idle keys don't pin
  //    detector memory. Deterministic for any shard count.
  Result<std::unique_ptr<StreamEngine>> created =
      api::EngineSpec()
          .NumShards(4)
          .Seed(42)
          .MaxIdleSubmissions(4096)
          .Detector(api::DetectorSpec()
                        .Tau(4)
                        .TauPrime(4)
                        .Replicates(150)
                        .Quantizer("kmeans")
                        .K(5))
          .Create();
  if (!created.ok()) {
    std::fprintf(stderr, "engine init failed: %s\n",
                 created.status().ToString().c_str());
    return 1;
  }
  StreamEngine& engine = **created;

  // 2) Every step result, eviction, and stream error arrives as one typed
  //    EngineEvent on shard threads; guard shared output with a mutex.
  std::mutex print_mu;
  engine.set_event_sink([&](const EngineEvent& ev) {
    if (ev.kind != EngineEvent::Kind::kStep || !ev.step.alarm) return;
    std::lock_guard<std::mutex> lock(print_mu);
    std::printf("ALARM  %-10s t=%-3llu score=%.3f xi=%.3f\n",
                ev.stream_id.c_str(),
                static_cast<unsigned long long>(ev.step.time), ev.step.score,
                ev.step.xi);
  });

  // 3) Simulate 12 sensors; the odd ones drift to a new regime at t = 20.
  Rng rng(7);
  const GaussianMixture normal = GaussianMixture::Isotropic({0.0, 0.0}, 0.7);
  const GaussianMixture drifted = GaussianMixture::Isotropic({4.0, 4.0}, 0.7);
  const int kSensors = 12;
  const int kTicks = 40;
  for (int t = 0; t < kTicks; ++t) {
    for (int s = 0; s < kSensors; ++s) {
      const GaussianMixture& mix =
          (s % 2 == 1 && t >= 20) ? drifted : normal;
      const std::string key = "sensor-" + std::to_string(s);
      // Non-blocking ingest first (high-fan-in shape). Flatten once; a
      // rejected TrySubmit hands the FlatBag back un-consumed, so the
      // blocking fallback reuses it without re-flattening.
      FlatBag bag =
          FlatBag::FromBag(mix.SampleBag(25, &rng)).ValueOrDie();
      Status status = engine.TrySubmit(key, std::move(bag));
      if (status.IsUnavailable()) status = engine.Submit(key, std::move(bag));
      if (!status.ok()) {
        std::fprintf(stderr, "submit failed: %s\n", status.ToString().c_str());
        return 1;
      }
    }
  }
  engine.Flush();

  std::printf(
      "\nprocessed %llu bags across %zu streams on %zu shards "
      "(%llu step results)\n",
      static_cast<unsigned long long>(engine.processed_count()),
      engine.stream_count(), engine.num_shards(),
      static_cast<unsigned long long>(engine.result_count()));
  return 0;
}
