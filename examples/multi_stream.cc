// Multi-stream monitoring with the concurrent runtime.
//
// A fleet of sensors each emits a bag of 2-d readings per tick. The
// StreamEngine hash-routes every sensor to one shard worker, runs an
// independent detector per sensor, and delivers alarms through a callback —
// the serving shape for monitoring many users/devices at once. Results are
// reproducible for a fixed engine seed no matter how many shards run.
//
// Build & run:
//   cmake -B build && cmake --build build -j
//   ./build/example_multi_stream

#include <cstdio>
#include <mutex>
#include <string>

#include "bagcpd/data/gmm.h"
#include "bagcpd/runtime/stream_engine.h"

int main() {
  using namespace bagcpd;

  // 1) Engine: 4 shard workers, one small detector per stream key.
  StreamEngineOptions options;
  options.num_shards = 4;
  options.seed = 42;
  options.detector.tau = 4;
  options.detector.tau_prime = 4;
  options.detector.bootstrap.replicates = 150;
  options.detector.signature.method = SignatureMethod::kKMeans;
  options.detector.signature.k = 5;
  // Serving hygiene: a sensor silent for > 4096 engine-wide submissions is
  // evicted and restarts fresh on its next bag, so idle keys don't pin
  // detector memory. Deterministic for any shard count.
  options.max_idle_submissions = 4096;
  StreamEngine engine(options);
  if (!engine.init_status().ok()) {
    std::fprintf(stderr, "engine init failed: %s\n",
                 engine.init_status().ToString().c_str());
    return 1;
  }

  // 2) Alarms arrive on shard threads; guard shared output with a mutex.
  std::mutex print_mu;
  engine.set_callback([&](const StreamStepResult& r) {
    if (!r.step.alarm) return;
    std::lock_guard<std::mutex> lock(print_mu);
    std::printf("ALARM  %-10s t=%-3llu score=%.3f xi=%.3f\n",
                r.stream_id.c_str(),
                static_cast<unsigned long long>(r.step.time), r.step.score,
                r.step.xi);
  });

  // 3) Simulate 12 sensors; the odd ones drift to a new regime at t = 20.
  Rng rng(7);
  const GaussianMixture normal = GaussianMixture::Isotropic({0.0, 0.0}, 0.7);
  const GaussianMixture drifted = GaussianMixture::Isotropic({4.0, 4.0}, 0.7);
  const int kSensors = 12;
  const int kTicks = 40;
  for (int t = 0; t < kTicks; ++t) {
    for (int s = 0; s < kSensors; ++s) {
      const GaussianMixture& mix =
          (s % 2 == 1 && t >= 20) ? drifted : normal;
      const std::string key = "sensor-" + std::to_string(s);
      // Non-blocking ingest first (high-fan-in shape). Flatten once; a
      // rejected TrySubmit hands the FlatBag back un-consumed, so the
      // blocking fallback reuses it without re-flattening.
      FlatBag bag =
          FlatBag::FromBag(mix.SampleBag(25, &rng)).ValueOrDie();
      Status status = engine.TrySubmit(key, std::move(bag));
      if (status.IsUnavailable()) status = engine.Submit(key, std::move(bag));
      if (!status.ok()) {
        std::fprintf(stderr, "submit failed: %s\n", status.ToString().c_str());
        return 1;
      }
    }
  }
  engine.Flush();

  std::printf(
      "\nprocessed %llu bags across %zu streams on %zu shards "
      "(%llu step results)\n",
      static_cast<unsigned long long>(engine.processed_count()),
      engine.stream_count(), engine.num_shards(),
      static_cast<unsigned long long>(engine.result_count()));
  return 0;
}
