// Survey drift (the paper's Section 1 questionnaire scenario): a survey runs
// every week with a different number of respondents; each answer sheet is a
// point in R^2 (say, satisfaction x price-sensitivity). Mid-series the
// population splits into two camps while the AVERAGE answer stays the same —
// the classic case where mean-based monitoring sees nothing and the
// bag-of-data detector fires.

#include <cstdio>

#include "bagcpd/bagcpd.h"

int main() {
  using namespace bagcpd;

  Rng rng(11);
  BagSequence surveys;
  for (int week = 0; week < 40; ++week) {
    GaussianMixture opinions =
        week < 20
            ? GaussianMixture::Isotropic({5.0, 5.0}, 1.0)  // One consensus.
            : GaussianMixture::EqualWeight({{2.0, 5.0}, {8.0, 5.0}}, 1.0);
    const std::size_t respondents =
        static_cast<std::size_t>(rng.Poisson(120, 20));
    surveys.push_back(opinions.SampleBag(respondents, &rng));
  }

  // What a mean-based dashboard would show: nothing moves.
  std::vector<Point> means = ReduceBags(surveys).ValueOrDie();
  std::printf("weekly mean answer (the polarization at week 20 is invisible):\n");
  for (int week : {0, 10, 19, 20, 21, 30, 39}) {
    std::printf("  week %2d: (%.2f, %.2f)  n=%zu\n", week, means[week][0],
                means[week][1], surveys[static_cast<std::size_t>(week)].size());
  }

  Result<std::unique_ptr<BagStreamDetector>> detector =
      api::DetectorSpec()
          .Tau(5)
          .TauPrime(5)
          .Replicates(250)
          .Quantizer("kmeans")
          .K(6)
          .Seed(12)
          .Create();
  if (!detector.ok()) {
    std::fprintf(stderr, "%s\n", detector.status().ToString().c_str());
    return 1;
  }
  Result<std::vector<StepResult>> results = (*detector)->Run(surveys);
  if (!results.ok()) {
    std::fprintf(stderr, "%s\n", results.status().ToString().c_str());
    return 1;
  }

  std::printf("\nbag-of-data detector:\n");
  for (const StepResult& r : results.ValueOrDie()) {
    if (r.alarm) {
      std::printf("  ALARM at week %llu (score %.3f, CI [%.3f, %.3f])\n",
                  static_cast<unsigned long long>(r.time), r.score, r.ci_lo,
                  r.ci_up);
    }
  }
  std::printf("the polarization was planted at week 20.\n");
  return 0;
}
