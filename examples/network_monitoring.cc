// Network monitoring (the paper's Sections 5.3-5.4 scenario): a weekly
// sender -> receiver email graph whose node sets change every week. Each week
// is summarized as bags of per-node statistics, and the detector watches
// every feature stream for significant changes — the alarms line up with the
// scripted "corporate events" of the simulator.

#include <cstdio>

#include "bagcpd/bagcpd.h"

int main() {
  using namespace bagcpd;

  EnronSimulatorOptions sim;
  sim.seed = 99;
  sim.weeks = 100;
  sim.node_rate = 40.0;
  sim.edge_density = 0.25;
  Result<EnronStream> generated = SimulateEnronStream(sim);
  if (!generated.ok()) {
    std::fprintf(stderr, "%s\n", generated.status().ToString().c_str());
    return 1;
  }
  const EnronStream& stream = generated.ValueOrDie();
  std::printf("simulated %zu weekly graphs; %zu scripted events\n\n",
              stream.weekly_graphs.size(), stream.events.size());

  // One spec shared by every feature watcher (paper Section 5.4: 5 reference
  // weeks, 3 test weeks); each feature gets its own detector from Create().
  const api::DetectorSpec spec = api::DetectorSpec()
                                     .Tau(5)
                                     .TauPrime(3)
                                     .Replicates(200)
                                     .Quantizer("kmeans")
                                     .K(8)
                                     .Seed(17);

  // Watch every one of the seven features; collect per-week alarm hits.
  std::vector<std::vector<std::uint64_t>> alarms_per_feature;
  for (GraphFeature feature : AllGraphFeatures()) {
    BagSequence bags;
    for (const BipartiteGraph& g : stream.weekly_graphs) {
      Result<Bag> bag = ExtractGraphFeature(g, feature);
      if (!bag.ok()) {
        std::fprintf(stderr, "%s\n", bag.status().ToString().c_str());
        return 1;
      }
      bags.push_back(bag.MoveValueUnsafe());
    }
    Result<std::unique_ptr<BagStreamDetector>> detector = spec.Create();
    if (!detector.ok()) {
      std::fprintf(stderr, "%s\n", detector.status().ToString().c_str());
      return 1;
    }
    Result<std::vector<StepResult>> results = (*detector)->Run(bags);
    if (!results.ok()) {
      std::fprintf(stderr, "%s\n", results.status().ToString().c_str());
      return 1;
    }
    alarms_per_feature.push_back(AlarmTimes(results.ValueOrDie()));
    std::printf("feature %d (%-26s): %zu alarms\n",
                static_cast<int>(feature), GraphFeatureName(feature),
                alarms_per_feature.back().size());
  }

  // Match events to alarms from any feature (within 3 weeks).
  std::printf("\nevent timeline:\n");
  for (const EnronEvent& event : stream.events) {
    bool detected = false;
    for (const auto& alarms : alarms_per_feature) {
      for (std::uint64_t a : alarms) {
        if (a >= event.week && a <= event.week + 3) detected = true;
      }
    }
    std::printf("  week %3zu  [%s]  %-18s  %s\n", event.week,
                detected ? "DETECTED" : "missed  ",
                EnronEventKindName(event.kind), event.label.c_str());
  }
  return 0;
}
