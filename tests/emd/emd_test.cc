#include "bagcpd/emd/emd.h"

#include <cmath>

#include <gtest/gtest.h>

#include "bagcpd/common/rng.h"
#include "bagcpd/runtime/thread_pool.h"

namespace bagcpd {
namespace {

Signature Sig(const std::vector<Point>& centers, std::vector<double> weights) {
  return Signature::FromCenters(centers, std::move(weights));
}

TEST(EmdTest, IdenticalSignaturesHaveZeroDistance) {
  Signature s = Sig({{0.0, 0.0}, {1.0, 1.0}}, {2.0, 3.0});
  Result<double> d = ComputeEmd(s, s);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(d.ValueOrDie(), 0.0, 1e-12);
}

TEST(EmdTest, SingleClusterPairIsGroundDistance) {
  Signature a = Sig({{0.0, 0.0}}, {5.0});
  Signature b = Sig({{3.0, 4.0}}, {5.0});
  EXPECT_NEAR(ComputeEmd(a, b).ValueOrDie(), 5.0, 1e-12);
  // Total-weight scale of both signatures does not matter.
  Signature b2 = Sig({{3.0, 4.0}}, {50.0});
  EXPECT_NEAR(ComputeEmd(a, b2).ValueOrDie(), 5.0, 1e-12);
}

TEST(EmdTest, HandComputedTwoToOne) {
  // Two supply clusters at x=0 (w=1) and x=2 (w=1); one demand at x=1 (w=2).
  // All mass moves distance 1 => EMD = 1.
  Signature a = Sig({{0.0}, {2.0}}, {1.0, 1.0});
  Signature b = Sig({{1.0}}, {2.0});
  EXPECT_NEAR(ComputeEmd(a, b).ValueOrDie(), 1.0, 1e-12);
}

TEST(EmdTest, HandComputedAsymmetricWeights) {
  // Supplies: x=0 w=3, x=4 w=1. Demands: x=0 w=1, x=4 w=3.
  // Move 2 units from 0 to 4 (distance 4); 2 units stay => cost 8, flow 4.
  Signature a = Sig({{0.0}, {4.0}}, {3.0, 1.0});
  Signature b = Sig({{0.0}, {4.0}}, {1.0, 3.0});
  EXPECT_NEAR(ComputeEmd(a, b).ValueOrDie(), 8.0 / 4.0, 1e-12);
}

TEST(EmdTest, PartialMatchingUnequalTotals) {
  // Supply 2 at x=0; demands 1 at x=1 and 1 at x=10. Only min(2, 2) = 2 total
  // but make totals differ: supply 1 at x=0, demands 1 at x=1, 1 at x=10.
  // Flow = min(1, 2) = 1, all to the near demand => EMD = 1.
  Signature a = Sig({{0.0}}, {1.0});
  Signature b = Sig({{1.0}, {10.0}}, {1.0, 1.0});
  Result<EmdSolution> sol =
      ComputeEmdDetailed(a, b, MakeGroundDistance(GroundDistance::kEuclidean));
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->total_flow, 1.0, 1e-12);
  EXPECT_NEAR(sol->emd, 1.0, 1e-12);
  EXPECT_NEAR(sol->flow(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(sol->flow(0, 1), 0.0, 1e-12);
}

TEST(EmdTest, FlowMatrixRespectsMarginals) {
  Signature a = Sig({{0.0}, {5.0}, {9.0}}, {2.0, 1.0, 1.5});
  Signature b = Sig({{1.0}, {6.0}}, {2.5, 2.0});
  Result<EmdSolution> sol =
      ComputeEmdDetailed(a, b, MakeGroundDistance(GroundDistance::kEuclidean));
  ASSERT_TRUE(sol.ok());
  // Row sums <= supply weights; column sums <= demand weights (Eqs. 9-10).
  for (std::size_t i = 0; i < a.size(); ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < b.size(); ++j) row += sol->flow(i, j);
    EXPECT_LE(row, a.weight(i) + 1e-9);
  }
  for (std::size_t j = 0; j < b.size(); ++j) {
    double col = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) col += sol->flow(i, j);
    EXPECT_LE(col, b.weight(j) + 1e-9);
  }
  // Eq. 11: total flow = min of total weights.
  EXPECT_NEAR(sol->total_flow, 4.5, 1e-9);
}

TEST(EmdTest, SymmetricInArguments) {
  Signature a = Sig({{0.0, 0.0}, {2.0, 1.0}}, {1.0, 2.0});
  Signature b = Sig({{1.0, 1.0}, {3.0, 0.0}, {0.5, 2.0}}, {1.5, 1.0, 0.5});
  EXPECT_NEAR(ComputeEmd(a, b).ValueOrDie(), ComputeEmd(b, a).ValueOrDie(),
              1e-10);
}

TEST(EmdTest, ManhattanGroundDistance) {
  Signature a = Sig({{0.0, 0.0}}, {1.0});
  Signature b = Sig({{3.0, 4.0}}, {1.0});
  EXPECT_NEAR(ComputeEmd(a, b, GroundDistance::kManhattan).ValueOrDie(), 7.0,
              1e-12);
  EXPECT_NEAR(
      ComputeEmd(a, b, GroundDistance::kSquaredEuclidean).ValueOrDie(), 25.0,
      1e-12);
}

TEST(EmdTest, RejectsDimensionMismatch) {
  Signature a = Sig({{0.0}}, {1.0});
  Signature b = Sig({{0.0, 0.0}}, {1.0});
  EXPECT_FALSE(ComputeEmd(a, b).ok());
}

TEST(EmdTest, RejectsInvalidSignature) {
  Signature a = Sig({{0.0}}, {0.0});  // Zero weight.
  Signature b = Sig({{1.0}}, {1.0});
  EXPECT_FALSE(ComputeEmd(a, b).ok());
}

TEST(EmdTest, RejectsNegativeGroundDistance) {
  Signature a = Sig({{0.0}}, {1.0});
  Signature b = Sig({{1.0}}, {1.0});
  GroundDistanceFn bad = [](PointView, PointView) { return -1.0; };
  EXPECT_FALSE(ComputeEmd(a, b, bad).ok());
}

TEST(EmdTest, PairwiseMatrixIsSymmetricWithZeroDiagonal) {
  std::vector<Signature> sigs = {
      Sig({{0.0}}, {1.0}),
      Sig({{2.0}}, {1.0}),
      Sig({{5.0}}, {1.0}),
  };
  Result<Matrix> m = PairwiseEmdMatrix(sigs);
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ((*m)(0, 0), 0.0);
  EXPECT_NEAR((*m)(0, 1), 2.0, 1e-12);
  EXPECT_NEAR((*m)(1, 2), 3.0, 1e-12);
  EXPECT_NEAR((*m)(0, 2), 5.0, 1e-12);
  EXPECT_DOUBLE_EQ((*m)(2, 0), (*m)(0, 2));
}

TEST(EmdTest, ParallelPairwiseMatrixBitwiseEqualsSerial) {
  // The ThreadPool overload must reproduce the serial matrix bit for bit for
  // any pool size (and exercise odd sizes so the triangular index inversion
  // is hit across chunk boundaries).
  Rng rng(31);
  SignatureSet set;
  for (int s = 0; s < 13; ++s) {
    std::vector<Point> centers;
    std::vector<double> weights;
    for (int k = 0; k < 3; ++k) {
      centers.push_back({rng.Uniform() * 4.0, rng.Uniform() * 4.0});
      weights.push_back(0.5 + rng.Uniform());
    }
    ASSERT_TRUE(set.Append(Sig(centers, std::move(weights))).ok());
  }
  const Matrix serial = PairwiseEmdMatrix(set).ValueOrDie();
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    ThreadPool pool(threads);
    const Matrix parallel =
        PairwiseEmdMatrix(set, GroundDistance::kEuclidean, &pool)
            .ValueOrDie();
    ASSERT_EQ(parallel.rows(), serial.rows());
    for (std::size_t i = 0; i < serial.rows(); ++i) {
      for (std::size_t j = 0; j < serial.cols(); ++j) {
        EXPECT_EQ(parallel(i, j), serial(i, j))
            << threads << " threads @ (" << i << ", " << j << ")";
      }
    }
  }
}

TEST(EmdTest, ParallelCrossDistanceMatrixBitwiseEqualsSerial) {
  // The pooled cross-distance fill (deterministic row chunking over
  // per-thread workspaces) must reproduce the serial matrix bit for bit for
  // any pool size, including ragged shapes that split unevenly across rows.
  Rng rng(47);
  SignatureSet a;
  SignatureSet b;
  for (int s = 0; s < 7; ++s) {
    std::vector<Point> centers;
    std::vector<double> weights;
    for (int k = 0; k < 3; ++k) {
      centers.push_back({rng.Uniform() * 4.0, rng.Uniform() * 4.0});
      weights.push_back(0.5 + rng.Uniform());
    }
    ASSERT_TRUE(a.Append(Sig(centers, std::move(weights))).ok());
  }
  for (int s = 0; s < 11; ++s) {
    std::vector<Point> centers;
    std::vector<double> weights;
    for (int k = 0; k < 4; ++k) {
      centers.push_back({rng.Uniform() * 4.0 - 2.0, rng.Uniform() * 4.0});
      weights.push_back(0.5 + rng.Uniform());
    }
    ASSERT_TRUE(b.Append(Sig(centers, std::move(weights))).ok());
  }
  const Matrix serial = CrossDistanceMatrix(a, b).ValueOrDie();
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    ThreadPool pool(threads);
    const Matrix parallel =
        CrossDistanceMatrix(a, b, GroundDistance::kEuclidean, &pool)
            .ValueOrDie();
    ASSERT_EQ(parallel.rows(), serial.rows());
    ASSERT_EQ(parallel.cols(), serial.cols());
    for (std::size_t i = 0; i < serial.rows(); ++i) {
      for (std::size_t j = 0; j < serial.cols(); ++j) {
        EXPECT_EQ(parallel(i, j), serial(i, j))
            << threads << " threads @ (" << i << ", " << j << ")";
      }
    }
  }
  // nullptr falls back to the serial overload outright.
  const Matrix fallback =
      CrossDistanceMatrix(a, b, GroundDistance::kEuclidean, nullptr)
          .ValueOrDie();
  EXPECT_EQ(fallback.MaxAbsDiff(serial), 0.0);
}

TEST(EmdTest, RubnerStyleExample) {
  // A classic small instance: supplies {(1,0):0.4, (0,1):0.6} vs demands
  // {(0,0):0.5, (1,1):0.5}. Optimal cost is 1.0 * (all unit distances):
  // every pairwise ground distance here is 1, so EMD = 1 regardless of flow.
  Signature a = Sig({{1.0, 0.0}, {0.0, 1.0}}, {0.4, 0.6});
  Signature b = Sig({{0.0, 0.0}, {1.0, 1.0}}, {0.5, 0.5});
  EXPECT_NEAR(ComputeEmd(a, b).ValueOrDie(), 1.0, 1e-9);
}

}  // namespace
}  // namespace bagcpd
