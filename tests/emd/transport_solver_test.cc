// EmdWorkspace contract tests: bitwise agreement with the MinCostFlow
// reference on random balanced/unbalanced instances, zero-allocation
// workspace reuse across changing problem shapes, degenerate instances, and
// a detector-level regression pinning that the rolling score tables did not
// move a single per-step output.

#include "bagcpd/emd/transport_solver.h"

#include <cmath>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "bagcpd/common/rng.h"
#include "bagcpd/core/detector.h"
#include "bagcpd/core/scores.h"
#include "bagcpd/data/gmm.h"
#include "bagcpd/emd/approx/emd_solver.h"
#include "bagcpd/emd/approx/options.h"
#include "bagcpd/emd/emd.h"
#include "bagcpd/emd/min_cost_flow.h"
#include "bagcpd/signature/builder.h"

namespace bagcpd {
namespace {

Signature RandomSignature(Rng* rng, std::size_t k, std::size_t dim,
                          double weight_scale = 1.0) {
  Signature s;
  for (std::size_t i = 0; i < k; ++i) {
    Point c(dim);
    for (double& v : c) v = rng->Uniform(-5.0, 5.0);
    s.AddCenter(c, weight_scale * rng->Uniform(0.5, 3.0));
  }
  return s;
}

// The pre-workspace ComputeEmdDetailed, verbatim on MinCostFlow — the
// reference implementation the workspace must reproduce bit for bit.
EmdSolution ReferenceDetailed(SignatureView a, SignatureView b,
                              const GroundDistanceFn& ground) {
  const std::size_t k = a.size();
  const std::size_t l = b.size();
  const double total_flow = std::min(a.TotalWeight(), b.TotalWeight());
  const std::size_t source = 0;
  const std::size_t sink = k + l + 1;
  MinCostFlow network(k + l + 2);
  for (std::size_t i = 0; i < k; ++i) {
    network.AddArc(source, 1 + i, a.weight(i), 0.0);
  }
  std::vector<std::vector<int>> ids(k, std::vector<int>(l));
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < l; ++j) {
      ids[i][j] =
          network.AddArc(1 + i, 1 + k + j, std::min(a.weight(i), b.weight(j)),
                         ground(a.center(i), b.center(j)));
    }
  }
  for (std::size_t j = 0; j < l; ++j) {
    network.AddArc(1 + k + j, sink, b.weight(j), 0.0);
  }
  FlowSolution flow = network.Solve(source, sink, total_flow).ValueOrDie();
  EmdSolution out;
  out.total_flow = flow.flow;
  out.cost = flow.cost;
  out.flow = Matrix(k, l);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < l; ++j) {
      out.flow(i, j) = network.FlowOn(ids[i][j]);
    }
  }
  out.emd = out.cost / out.total_flow;
  return out;
}

void ExpectBitwiseEqual(const EmdSolution& ref, const EmdSolution& ours,
                        const std::string& what) {
  EXPECT_EQ(ref.emd, ours.emd) << what;
  EXPECT_EQ(ref.cost, ours.cost) << what;
  EXPECT_EQ(ref.total_flow, ours.total_flow) << what;
  ASSERT_EQ(ref.flow.rows(), ours.flow.rows()) << what;
  ASSERT_EQ(ref.flow.cols(), ours.flow.cols()) << what;
  for (std::size_t i = 0; i < ref.flow.rows(); ++i) {
    for (std::size_t j = 0; j < ref.flow.cols(); ++j) {
      EXPECT_EQ(ref.flow(i, j), ours.flow(i, j))
          << what << " flow(" << i << ", " << j << ")";
    }
  }
}

TEST(TransportSolverTest, AgreesWithMinCostFlowBitwiseOnRandomInstances) {
  // Balanced-ish and wildly unbalanced (one side 16x the mass) random
  // instances across sizes, every ground distance, one shared workspace.
  Rng rng(101);
  const GroundDistanceFn euclid =
      MakeGroundDistance(GroundDistance::kEuclidean);
  EmdWorkspace workspace;
  for (const auto& [k, l] : std::vector<std::pair<std::size_t, std::size_t>>{
           {2, 2}, {3, 7}, {8, 8}, {16, 5}, {12, 12}}) {
    for (const double scale : {1.0, 16.0}) {
      const Signature a = RandomSignature(&rng, k, 3);
      const Signature b = RandomSignature(&rng, l, 3, scale);
      const EmdSolution ref = ReferenceDetailed(a, b, euclid);
      const EmdSolution ours =
          workspace.ComputeDetailed(a, b, euclid).ValueOrDie();
      ExpectBitwiseEqual(ref, ours,
                         "k=" + std::to_string(k) + " l=" + std::to_string(l) +
                             " scale=" + std::to_string(scale));
      // The enum path must agree with the fn path (same kernel, batched).
      EXPECT_EQ(ours.emd,
                workspace.Compute(a, b, GroundDistance::kEuclidean)
                    .ValueOrDie());
      // And so must the public entry points (thread-local workspace). Skip
      // dim==1 would hit the sweep; these are 3-d so always the full solve.
      EXPECT_EQ(ours.emd, ComputeEmd(a, b).ValueOrDie());
      EXPECT_EQ(ours.emd, ComputeEmd(a, b, euclid).ValueOrDie());
    }
  }
  for (GroundDistance ground :
       {GroundDistance::kSquaredEuclidean, GroundDistance::kManhattan}) {
    const Signature a = RandomSignature(&rng, 6, 2);
    const Signature b = RandomSignature(&rng, 9, 2);
    const EmdSolution ref =
        ReferenceDetailed(a, b, MakeGroundDistance(ground));
    EXPECT_EQ(ref.emd, workspace.Compute(a, b, ground).ValueOrDie())
        << GroundDistanceName(ground);
  }
}

TEST(TransportSolverTest, WorkspaceReuseAcrossGrowingAndShrinkingShapes) {
  Rng rng(202);
  const GroundDistanceFn euclid =
      MakeGroundDistance(GroundDistance::kEuclidean);
  EmdWorkspace workspace;
  // Grow, shrink, regrow: every solve must agree with a fresh reference, and
  // once the largest shape has been seen, the growth counter must freeze.
  const std::vector<std::pair<std::size_t, std::size_t>> shapes = {
      {2, 5}, {8, 8}, {3, 2}, {16, 11}, {1, 16}, {16, 16}, {2, 2}, {16, 16}};
  for (const auto& [k, l] : shapes) {
    const Signature a = RandomSignature(&rng, k, 2);
    const Signature b = RandomSignature(&rng, l, 2);
    const EmdSolution ref = ReferenceDetailed(a, b, euclid);
    EXPECT_EQ(ref.emd, workspace.Compute(a, b, euclid).ValueOrDie())
        << "k=" << k << " l=" << l;
  }
  const std::uint64_t allocs_after_peak = workspace.allocation_count();
  const std::uint64_t solves_before = workspace.solve_count();
  // Every shape fits in the grown buffers now: zero further allocations.
  for (const auto& [k, l] : shapes) {
    const Signature a = RandomSignature(&rng, k, 2);
    const Signature b = RandomSignature(&rng, l, 2);
    const EmdSolution ref = ReferenceDetailed(a, b, euclid);
    EXPECT_EQ(ref.emd,
              workspace.Compute(a, b, GroundDistance::kEuclidean)
                  .ValueOrDie());
  }
  EXPECT_EQ(workspace.allocation_count(), allocs_after_peak)
      << "steady-state solves must not grow the workspace";
  EXPECT_EQ(workspace.solve_count(), solves_before + shapes.size());
}

TEST(TransportSolverTest, DegenerateInstances) {
  const GroundDistanceFn euclid =
      MakeGroundDistance(GroundDistance::kEuclidean);
  EmdWorkspace workspace;

  // K = 1 vs L = 1: the distance between the centers, any weights.
  Signature a = Signature::FromCenters({{0.0, 0.0}}, {5.0});
  Signature b = Signature::FromCenters({{3.0, 4.0}}, {0.5});
  EXPECT_EQ(workspace.Compute(a, b, euclid).ValueOrDie(),
            ReferenceDetailed(a, b, euclid).emd);
  EXPECT_NEAR(workspace.Compute(a, b, euclid).ValueOrDie(), 5.0, 1e-12);

  // K = 1 vs L = 3 (and transposed).
  Signature c = Signature::FromCenters({{1.0, 0.0}, {9.0, 9.0}, {0.0, 1.0}},
                                       {1.0, 1.0, 1.0});
  EXPECT_EQ(workspace.Compute(a, c, euclid).ValueOrDie(),
            ReferenceDetailed(a, c, euclid).emd);
  EXPECT_EQ(workspace.Compute(c, a, euclid).ValueOrDie(),
            ReferenceDetailed(c, a, euclid).emd);

  // Equal centers on both sides: zero distance, flow along zero-cost arcs.
  Signature d = Signature::FromCenters({{1.0}, {2.0}}, {1.0, 3.0});
  Signature e = Signature::FromCenters({{1.0}, {2.0}}, {3.0, 1.0});
  const EmdSolution ref = ReferenceDetailed(d, e, euclid);
  const EmdSolution ours = workspace.ComputeDetailed(d, e, euclid).ValueOrDie();
  ExpectBitwiseEqual(ref, ours, "equal centers");

  // Extreme mass ratio (partial matching moves only the small side's mass).
  Signature tiny = Signature::FromCenters({{0.0}}, {1e-6});
  Signature huge = Signature::FromCenters({{2.0}, {4.0}}, {1e6, 1e6});
  const EmdSolution ref2 = ReferenceDetailed(tiny, huge, euclid);
  const EmdSolution ours2 =
      workspace.ComputeDetailed(tiny, huge, euclid).ValueOrDie();
  ExpectBitwiseEqual(ref2, ours2, "mass ratio");
  EXPECT_NEAR(ours2.total_flow, 1e-6, 1e-18);
}

TEST(TransportSolverTest, RejectsTheSameInstancesAsTheReferencePath) {
  EmdWorkspace workspace;
  Signature a = Signature::FromCenters({{0.0}}, {1.0});
  Signature b2d = Signature::FromCenters({{0.0, 0.0}}, {1.0});
  EXPECT_FALSE(workspace.Compute(a, b2d, GroundDistance::kEuclidean).ok());

  Signature zero_weight = Signature::FromCenters({{0.0}}, {0.0});
  EXPECT_FALSE(
      workspace.Compute(zero_weight, a, GroundDistance::kEuclidean).ok());
  EXPECT_FALSE(workspace.Compute(Signature(), a, GroundDistance::kEuclidean)
                   .ok());

  Signature c = Signature::FromCenters({{1.0}}, {1.0});
  GroundDistanceFn negative = [](PointView, PointView) { return -1.0; };
  EXPECT_FALSE(workspace.Compute(a, c, negative).ok());
  GroundDistanceFn non_finite = [](PointView, PointView) {
    return std::numeric_limits<double>::quiet_NaN();
  };
  EXPECT_FALSE(workspace.Compute(a, c, non_finite).ok());
  // A failed solve must not poison the workspace for the next one.
  EXPECT_EQ(workspace.Compute(a, c, GroundDistance::kEuclidean).ValueOrDie(),
            1.0);
}

TEST(TransportSolverTest, DetectorStepsIdenticalToFirstPrinciplesRebuild) {
  // Detector-level regression for the rolling score tables: every per-step
  // score must equal one recomputed from scratch — signatures rebuilt
  // deterministically, every window EMD solved fresh, the three log tables
  // assembled directly, ComputeScore called on them. Any drift in the
  // rolling table's contents or block extraction shows up here.
  DetectorOptions options;
  options.tau = 4;
  options.tau_prime = 3;
  options.bootstrap.replicates = 0;  // Scores only: no RNG coupling.
  options.signature.method = SignatureMethod::kKMeans;
  options.signature.k = 4;
  options.seed = 9;

  Rng rng(404);
  const GaussianMixture before = GaussianMixture::Isotropic({0.0, 0.0}, 0.6);
  const GaussianMixture after = GaussianMixture::Isotropic({3.0, 3.0}, 0.6);
  BagSequence bags;
  for (std::size_t t = 0; t < 22; ++t) {
    bags.push_back((t < 11 ? before : after).SampleBag(18, &rng));
  }

  auto detector = BagStreamDetector::Create(options).MoveValueUnsafe();
  const std::vector<StepResult> steps = detector->Run(bags).ValueOrDie();
  ASSERT_EQ(steps.size(),
            bags.size() - (options.tau + options.tau_prime) + 1);

  // Rebuild the signatures exactly as the detector does (same builder
  // options, same per-index build), then score each inspection point from
  // first principles.
  SignatureBuilder builder(options.signature);
  std::vector<Signature> sigs;
  for (std::size_t t = 0; t < bags.size(); ++t) {
    sigs.push_back(builder.Build(bags[t], t).ValueOrDie());
  }
  EmdWorkspace workspace;
  const std::vector<double> pi_ref(
      options.tau, 1.0 / static_cast<double>(options.tau));
  const std::vector<double> pi_test(
      options.tau_prime, 1.0 / static_cast<double>(options.tau_prime));
  const double floor = options.info.distance_floor;
  auto log_emd = [&](std::size_t i, std::size_t j) {
    const double d =
        workspace.Compute(sigs[i], sigs[j], options.ground).ValueOrDie();
    return std::log(std::max(d, floor));
  };
  for (const StepResult& step : steps) {
    const std::size_t t = static_cast<std::size_t>(step.time);
    ScoreContext ctx;
    ctx.info = options.info;
    ctx.log_ref_ref = Matrix(options.tau, options.tau, 0.0);
    ctx.log_test_test = Matrix(options.tau_prime, options.tau_prime, 0.0);
    ctx.log_ref_test = Matrix(options.tau, options.tau_prime, 0.0);
    const std::size_t ref_start = t - options.tau;
    for (std::size_t i = 0; i < options.tau; ++i) {
      for (std::size_t j = i + 1; j < options.tau; ++j) {
        const double v = log_emd(ref_start + i, ref_start + j);
        ctx.log_ref_ref(i, j) = v;
        ctx.log_ref_ref(j, i) = v;
      }
    }
    for (std::size_t i = 0; i < options.tau_prime; ++i) {
      for (std::size_t j = i + 1; j < options.tau_prime; ++j) {
        const double v = log_emd(t + i, t + j);
        ctx.log_test_test(i, j) = v;
        ctx.log_test_test(j, i) = v;
      }
    }
    for (std::size_t i = 0; i < options.tau; ++i) {
      for (std::size_t j = 0; j < options.tau_prime; ++j) {
        ctx.log_ref_test(i, j) = log_emd(ref_start + i, t + j);
      }
    }
    const double expected =
        ComputeScore(options.score_type, ctx, pi_ref, pi_test).ValueOrDie();
    EXPECT_EQ(step.score, expected) << "inspection time " << t;
  }
}

TEST(TransportSolverTest, AllocationCounterFreezesOnRepeatedShapes) {
  // Regression pin for the zero-steady-state-allocation contract: after one
  // warm-up pass over a set of problem shapes, replaying those shapes (in any
  // order, any number of times) must not move allocation_count() at all.
  Rng rng(1234);
  std::vector<std::pair<Signature, Signature>> pairs;
  for (const std::size_t k : {std::size_t{2}, std::size_t{7}, std::size_t{16}}) {
    pairs.emplace_back(RandomSignature(&rng, k, 3),
                       RandomSignature(&rng, 17 - k, 3));
  }
  EmdWorkspace workspace;
  std::vector<double> warm;
  for (const auto& [a, b] : pairs) {
    warm.push_back(
        workspace.Compute(a, b, GroundDistance::kSquaredEuclidean)
            .ValueOrDie());
  }
  const std::uint64_t pinned = workspace.allocation_count();
  for (int round = 0; round < 4; ++round) {
    for (std::size_t p = pairs.size(); p-- > 0;) {  // Reverse order too.
      EXPECT_EQ(workspace
                    .Compute(pairs[p].first, pairs[p].second,
                             GroundDistance::kSquaredEuclidean)
                    .ValueOrDie(),
                warm[p]);
    }
  }
  EXPECT_EQ(workspace.allocation_count(), pinned);
}

TEST(TransportSolverTest, RetainedByteCeilingPolicy) {
  Rng rng(555);
  const Signature a = RandomSignature(&rng, 32, 3);
  const Signature b = RandomSignature(&rng, 32, 3);
  EmdWorkspace workspace;
  const double value =
      workspace.Compute(a, b, GroundDistance::kEuclidean).ValueOrDie();
  const std::size_t footprint = workspace.retained_bytes();
  ASSERT_GT(footprint, 0u);

  // Default ceiling 0 = never shrink.
  EXPECT_EQ(workspace.retained_byte_ceiling(), 0u);
  workspace.ShrinkToCeiling();
  EXPECT_EQ(workspace.retained_bytes(), footprint);

  // A ceiling at or above the footprint is also a no-op.
  workspace.set_retained_byte_ceiling(footprint);
  workspace.ShrinkToCeiling();
  EXPECT_EQ(workspace.retained_bytes(), footprint);

  // Below the footprint, ALL scratch is released (no partial trim — the
  // buffers are one working set), and the next solve regrows to the same
  // value with the growth visible in allocation_count().
  workspace.set_retained_byte_ceiling(footprint - 1);
  workspace.ShrinkToCeiling();
  EXPECT_EQ(workspace.retained_bytes(), 0u);
  const std::uint64_t allocs = workspace.allocation_count();
  EXPECT_EQ(workspace.Compute(a, b, GroundDistance::kEuclidean).ValueOrDie(),
            value);
  EXPECT_GT(workspace.allocation_count(), allocs);
  EXPECT_EQ(workspace.retained_bytes(), footprint);
}

TEST(TransportSolverTest, HeapDijkstraMatchesDenseBitwise) {
  // The 4-ary-heap Dijkstra (forced via threshold 1) against the dense scan
  // (threshold 0): every augmentation must pop the same (dist, node)
  // sequence, so EMD, cost, total flow, AND the full flow matrix must agree
  // to the last bit on balanced, unbalanced, and rectangular instances.
  Rng rng(808);
  const GroundDistanceFn euclid =
      MakeGroundDistance(GroundDistance::kEuclidean);
  EmdWorkspace dense;
  dense.set_heap_threshold(0);
  EmdWorkspace heap;
  heap.set_heap_threshold(1);
  for (const auto& [k, l] : std::vector<std::pair<std::size_t, std::size_t>>{
           {2, 2}, {3, 7}, {16, 5}, {24, 24}, {40, 17}, {33, 64}}) {
    for (const double scale : {1.0, 16.0}) {
      const Signature a = RandomSignature(&rng, k, 3);
      const Signature b = RandomSignature(&rng, l, 3, scale);
      const EmdSolution d = dense.ComputeDetailed(a, b, euclid).ValueOrDie();
      const EmdSolution h = heap.ComputeDetailed(a, b, euclid).ValueOrDie();
      ExpectBitwiseEqual(d, h,
                         "k=" + std::to_string(k) + " l=" + std::to_string(l) +
                             " scale=" + std::to_string(scale));
    }
  }
}

TEST(TransportSolverTest, HeapDijkstraMatchesDenseOnTieHeavyInstances) {
  // Centers drawn from a tiny integer grid under Manhattan distance: most
  // arcs share one of a handful of exact costs, so Dijkstra hits equal-dist
  // ties on nearly every pop. The dense scan resolves them lowest-index-
  // first (strict < over the linear sweep); the heap's (dist, node) keys
  // must reproduce that order exactly, or some flow lands on a different
  // equal-cost arc and the flow matrix diverges.
  Rng rng(818);
  auto grid_signature = [&rng](std::size_t n) {
    Signature s;
    for (std::size_t i = 0; i < n; ++i) {
      Point c(2);
      for (double& v : c) v = std::floor(rng.Uniform(0.0, 3.0));  // {0,1,2}
      s.AddCenter(c, 1.0);
    }
    return s;
  };
  const GroundDistanceFn manhattan =
      MakeGroundDistance(GroundDistance::kManhattan);
  EmdWorkspace dense;
  dense.set_heap_threshold(0);
  EmdWorkspace heap;
  heap.set_heap_threshold(1);
  for (const std::size_t n :
       {std::size_t{4}, std::size_t{12}, std::size_t{30}}) {
    for (int trial = 0; trial < 3; ++trial) {
      const Signature a = grid_signature(n);
      const Signature b = grid_signature(n + 3);
      const EmdSolution d =
          dense.ComputeDetailed(a, b, manhattan).ValueOrDie();
      const EmdSolution h = heap.ComputeDetailed(a, b, manhattan).ValueOrDie();
      ExpectBitwiseEqual(d, h,
                         "tie-heavy n=" + std::to_string(n) + " trial=" +
                             std::to_string(trial));
    }
  }
}

TEST(TransportSolverTest, HeapPathAllocationCounterFreezes) {
  // The heap arrays are part of the workspace working set: after one warm-up
  // solve per shape on the forced-heap path, replaying the shapes must not
  // move allocation_count() at all.
  Rng rng(828);
  std::vector<std::pair<Signature, Signature>> pairs;
  for (const std::size_t k :
       {std::size_t{3}, std::size_t{11}, std::size_t{26}}) {
    pairs.emplace_back(RandomSignature(&rng, k, 2),
                       RandomSignature(&rng, 29 - k, 2));
  }
  EmdWorkspace workspace;
  workspace.set_heap_threshold(1);  // Every solve through the heap.
  std::vector<double> warm;
  for (const auto& [a, b] : pairs) {
    warm.push_back(
        workspace.Compute(a, b, GroundDistance::kEuclidean).ValueOrDie());
  }
  const std::uint64_t pinned = workspace.allocation_count();
  for (int round = 0; round < 4; ++round) {
    for (std::size_t p = 0; p < pairs.size(); ++p) {
      EXPECT_EQ(workspace
                    .Compute(pairs[p].first, pairs[p].second,
                             GroundDistance::kEuclidean)
                    .ValueOrDie(),
                warm[p]);
    }
  }
  EXPECT_EQ(workspace.allocation_count(), pinned);
}

TEST(TransportSolverTest, ComputeBatchMatchesPerPairBitwise) {
  // All three overloads against the per-pair loop, on every ground distance.
  Rng rng(838);
  EmdWorkspace workspace;
  EmdWorkspace reference;
  for (const GroundDistance ground :
       {GroundDistance::kEuclidean, GroundDistance::kSquaredEuclidean,
        GroundDistance::kManhattan}) {
    // Distinct pairs with varying shapes (the general overload).
    std::vector<Signature> a_store;
    std::vector<Signature> b_store;
    for (const std::size_t k :
         {std::size_t{2}, std::size_t{5}, std::size_t{9}, std::size_t{17}}) {
      a_store.push_back(RandomSignature(&rng, k, 2));
      b_store.push_back(RandomSignature(&rng, 19 - k, 2, 4.0));
    }
    std::vector<SignatureView> as(a_store.begin(), a_store.end());
    std::vector<SignatureView> bs(b_store.begin(), b_store.end());
    std::vector<double> batch(as.size());
    ASSERT_TRUE(workspace
                    .ComputeBatch(as.data(), bs.data(), as.size(), ground,
                                  batch.data())
                    .ok());
    for (std::size_t p = 0; p < as.size(); ++p) {
      EXPECT_EQ(batch[p],
                reference.Compute(as[p], bs[p], ground).ValueOrDie())
          << "general p=" << p;
    }

    // Shared left: one row of a cross-distance matrix.
    const Signature shared = RandomSignature(&rng, 7, 2);
    ASSERT_TRUE(workspace
                    .ComputeBatch(SignatureView(shared), bs.data(), bs.size(),
                                  ground, batch.data())
                    .ok());
    for (std::size_t p = 0; p < bs.size(); ++p) {
      EXPECT_EQ(batch[p],
                reference.Compute(shared, bs[p], ground).ValueOrDie())
          << "shared-left p=" << p;
    }

    // Shared right: the detector's rolling-step shape (olders vs newest).
    ASSERT_TRUE(workspace
                    .ComputeBatch(as.data(), as.size(), SignatureView(shared),
                                  ground, batch.data())
                    .ok());
    for (std::size_t p = 0; p < as.size(); ++p) {
      EXPECT_EQ(batch[p],
                reference.Compute(as[p], shared, ground).ValueOrDie())
          << "shared-right p=" << p;
    }

    // The general overload must also detect dynamically-aliased operands
    // (every slot the same view) and still match the per-pair loop.
    std::vector<SignatureView> aliased(bs.size(), SignatureView(shared));
    ASSERT_TRUE(workspace
                    .ComputeBatch(aliased.data(), bs.data(), bs.size(), ground,
                                  batch.data())
                    .ok());
    for (std::size_t p = 0; p < bs.size(); ++p) {
      EXPECT_EQ(batch[p],
                reference.Compute(shared, bs[p], ground).ValueOrDie())
          << "aliased p=" << p;
    }
  }
}

TEST(TransportSolverTest, ComputeBatchSteadyStateAllocationsFreeze) {
  // After one warm batch per shape, replaying the same batches (and their
  // per-pair equivalents) must not grow the workspace: the flat cost block
  // and offset table are sized once to the largest batch.
  Rng rng(848);
  const Signature newest = RandomSignature(&rng, 12, 2);
  std::vector<Signature> older_store;
  for (std::size_t p = 0; p < 9; ++p) {
    older_store.push_back(RandomSignature(&rng, 12, 2));
  }
  std::vector<SignatureView> olders(older_store.begin(), older_store.end());
  std::vector<double> out(olders.size());
  EmdWorkspace workspace;
  ASSERT_TRUE(workspace
                  .ComputeBatch(olders.data(), olders.size(),
                                SignatureView(newest),
                                GroundDistance::kEuclidean, out.data())
                  .ok());
  const std::vector<double> warm = out;
  const std::uint64_t pinned = workspace.allocation_count();
  for (int round = 0; round < 4; ++round) {
    ASSERT_TRUE(workspace
                    .ComputeBatch(olders.data(), olders.size(),
                                  SignatureView(newest),
                                  GroundDistance::kEuclidean, out.data())
                    .ok());
    EXPECT_EQ(out, warm);
  }
  EXPECT_EQ(workspace.allocation_count(), pinned);
}

TEST(TransportSolverTest, ComputeBatchErrorCases) {
  Rng rng(858);
  EmdWorkspace workspace;
  const Signature good = RandomSignature(&rng, 4, 2);
  const Signature also_good = RandomSignature(&rng, 3, 2);
  const Signature wrong_dim = RandomSignature(&rng, 4, 3);
  const Signature empty;

  // An empty batch is a no-op success.
  EXPECT_TRUE(workspace
                  .ComputeBatch(nullptr, nullptr, 0,
                                GroundDistance::kEuclidean, nullptr)
                  .ok());

  // A bad pair anywhere in the span fails the whole batch up front (pair
  // order, like the serial loop): dimension mismatch and empty signature.
  std::vector<SignatureView> as = {good, good, wrong_dim};
  std::vector<SignatureView> bs = {also_good, also_good, also_good};
  std::vector<double> out(as.size(), -1.0);
  EXPECT_FALSE(workspace
                   .ComputeBatch(as.data(), bs.data(), as.size(),
                                 GroundDistance::kEuclidean, out.data())
                   .ok());
  std::vector<SignatureView> with_empty = {good, empty};
  EXPECT_FALSE(workspace
                   .ComputeBatch(with_empty.data(), 2, SignatureView(good),
                                 GroundDistance::kEuclidean, out.data())
                   .ok());
  // A failed batch must not poison the workspace.
  EXPECT_EQ(workspace.Compute(good, also_good, GroundDistance::kEuclidean)
                .ValueOrDie(),
            EmdWorkspace()
                .Compute(good, also_good, GroundDistance::kEuclidean)
                .ValueOrDie());
}

TEST(TransportSolverTest, EmdSolverComputeBatchMatchesComputeForEveryKind) {
  // EmdSolver::ComputeBatch must be value-identical to its per-pair Compute
  // for the exact kind AND every approximate kind (which batch via the
  // per-pair fallback) — normalized signatures so sinkhorn's balanced
  // assumption holds.
  Rng rng(868);
  Signature newest = RandomSignature(&rng, 8, 2);
  newest.NormalizeInPlace();
  std::vector<Signature> older_store;
  for (std::size_t p = 0; p < 5; ++p) {
    Signature s = RandomSignature(&rng, 8, 2);
    s.NormalizeInPlace();
    older_store.push_back(std::move(s));
  }
  std::vector<SignatureView> olders(older_store.begin(), older_store.end());
  for (const char* spec : {"exact", "sinkhorn:0.1", "sliced:16"}) {
    const EmdSolverOptions options = ParseEmdSolverSpec(spec).ValueOrDie();
    EmdSolver solver(options);
    EmdSolver reference(options);
    std::vector<double> batch(olders.size());
    ASSERT_TRUE(solver
                    .ComputeBatch(olders.data(), olders.size(),
                                  SignatureView(newest),
                                  GroundDistance::kSquaredEuclidean,
                                  batch.data())
                    .ok())
        << spec;
    for (std::size_t p = 0; p < olders.size(); ++p) {
      EXPECT_EQ(batch[p],
                reference
                    .Compute(olders[p], newest,
                             GroundDistance::kSquaredEuclidean)
                    .ValueOrDie())
          << spec << " p=" << p;
    }
    // The explicit-options pair-span overload (the pooled-prefill path).
    std::vector<SignatureView> rights(olders.size(), SignatureView(newest));
    std::vector<double> batch2(olders.size());
    ASSERT_TRUE(solver
                    .ComputeBatch(olders.data(), rights.data(), olders.size(),
                                  GroundDistance::kSquaredEuclidean, options,
                                  batch2.data())
                    .ok())
        << spec;
    EXPECT_EQ(batch, batch2) << spec;
  }
}

TEST(TransportSolverTest, DetectorIdenticalAcrossHeapThresholds) {
  // emd-heap-at is a pure performance knob: forced-dense (0), forced-heap
  // (1), and the default crossover must produce bitwise-identical per-step
  // results on the same stream, bootstrap CIs included.
  Rng rng(878);
  const GaussianMixture before = GaussianMixture::Isotropic({0.0, 0.0}, 0.7);
  const GaussianMixture after = GaussianMixture::Isotropic({2.5, 2.5}, 0.7);
  BagSequence bags;
  for (std::size_t t = 0; t < 18; ++t) {
    bags.push_back((t < 9 ? before : after).SampleBag(16, &rng));
  }
  auto run_with = [&bags](std::size_t heap_at) {
    DetectorOptions options;
    options.tau = 3;
    options.tau_prime = 3;
    options.bootstrap.replicates = 40;
    options.signature.method = SignatureMethod::kKMeans;
    options.signature.k = 4;
    options.seed = 31;
    options.emd.heap_at = heap_at;
    auto detector = BagStreamDetector::Create(options).MoveValueUnsafe();
    return detector->Run(bags).ValueOrDie();
  };
  const std::vector<StepResult> dense = run_with(0);
  const std::vector<StepResult> heap = run_with(1);
  const std::vector<StepResult> preset = run_with(kDefaultEmdHeapAt);
  ASSERT_EQ(dense.size(), heap.size());
  ASSERT_EQ(dense.size(), preset.size());
  for (std::size_t i = 0; i < dense.size(); ++i) {
    for (const std::vector<StepResult>* other : {&heap, &preset}) {
      EXPECT_EQ(dense[i].score, (*other)[i].score) << i;
      EXPECT_EQ(dense[i].ci_lo, (*other)[i].ci_lo) << i;
      EXPECT_EQ(dense[i].ci_up, (*other)[i].ci_up) << i;
      EXPECT_EQ(dense[i].alarm, (*other)[i].alarm) << i;
    }
  }
}

TEST(TransportSolverTest, DetectorRollingTablesSurviveReset) {
  // Reset() must rewind the rolling table, its base slot, and the cache to a
  // fresh state: re-running the same stream on the SAME detector yields
  // bitwise-identical scores (bootstrap off — the detector's RNG, like
  // before, is deliberately not rewound by Reset).
  DetectorOptions options;
  options.tau = 3;
  options.tau_prime = 3;
  options.bootstrap.replicates = 0;
  options.signature.k = 3;
  options.seed = 5;
  Rng rng(77);
  const GaussianMixture mix = GaussianMixture::Isotropic({0.0}, 1.0);
  BagSequence bags;
  for (int t = 0; t < 14; ++t) bags.push_back(mix.SampleBag(15, &rng));

  auto detector = BagStreamDetector::Create(options).MoveValueUnsafe();
  const std::vector<StepResult> first = detector->Run(bags).ValueOrDie();
  const std::vector<StepResult> second = detector->Run(bags).ValueOrDie();
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].score, second[i].score) << i;
    EXPECT_EQ(first[i].time, second[i].time) << i;
  }
}

}  // namespace
}  // namespace bagcpd
