// Property-based tests of EMD's metric behaviour over randomly generated
// signatures. For signatures of equal total weight and a metric ground
// distance, EMD is a metric (Rubner et al. 2000): we verify identity,
// symmetry, non-negativity, the triangle inequality, and the invariances
// (translation of all centers; common scaling of all weights).

#include <cmath>

#include <gtest/gtest.h>

#include "bagcpd/common/rng.h"
#include "bagcpd/emd/emd.h"

namespace bagcpd {
namespace {

Signature RandomSignature(Rng* rng, std::size_t k, std::size_t dim,
                          bool normalize) {
  Signature s;
  for (std::size_t i = 0; i < k; ++i) {
    Point c(dim);
    for (double& v : c) v = rng->Uniform(-5.0, 5.0);
    s.AddCenter(c, rng->Uniform(0.1, 3.0));
  }
  return normalize ? s.Normalized() : s;
}

struct PropertyCase {
  std::uint64_t seed;
  std::size_t k1, k2, k3;
  std::size_t dim;
};

class EmdMetricPropertyTest : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(EmdMetricPropertyTest, NonNegativityAndSymmetry) {
  const PropertyCase& pc = GetParam();
  Rng rng(pc.seed);
  Signature a = RandomSignature(&rng, pc.k1, pc.dim, true);
  Signature b = RandomSignature(&rng, pc.k2, pc.dim, true);
  const double dab = ComputeEmd(a, b).ValueOrDie();
  const double dba = ComputeEmd(b, a).ValueOrDie();
  EXPECT_GE(dab, 0.0);
  EXPECT_NEAR(dab, dba, 1e-9);
}

TEST_P(EmdMetricPropertyTest, IdentityOfIndiscernibles) {
  const PropertyCase& pc = GetParam();
  Rng rng(pc.seed + 1);
  Signature a = RandomSignature(&rng, pc.k1, pc.dim, true);
  EXPECT_NEAR(ComputeEmd(a, a).ValueOrDie(), 0.0, 1e-10);
}

TEST_P(EmdMetricPropertyTest, TriangleInequalityForEqualMass) {
  const PropertyCase& pc = GetParam();
  Rng rng(pc.seed + 2);
  Signature a = RandomSignature(&rng, pc.k1, pc.dim, true);
  Signature b = RandomSignature(&rng, pc.k2, pc.dim, true);
  Signature c = RandomSignature(&rng, pc.k3, pc.dim, true);
  const double dab = ComputeEmd(a, b).ValueOrDie();
  const double dbc = ComputeEmd(b, c).ValueOrDie();
  const double dac = ComputeEmd(a, c).ValueOrDie();
  EXPECT_LE(dac, dab + dbc + 1e-8);
}

TEST_P(EmdMetricPropertyTest, TranslationInvariance) {
  const PropertyCase& pc = GetParam();
  Rng rng(pc.seed + 3);
  Signature a = RandomSignature(&rng, pc.k1, pc.dim, true);
  Signature b = RandomSignature(&rng, pc.k2, pc.dim, true);
  const double before = ComputeEmd(a, b).ValueOrDie();
  Point shift(pc.dim);
  for (double& v : shift) v = rng.Uniform(-10.0, 10.0);
  for (std::size_t k = 0; k < a.size(); ++k) {
    double* c = a.mutable_center(k);
    for (std::size_t j = 0; j < pc.dim; ++j) c[j] += shift[j];
  }
  for (std::size_t k = 0; k < b.size(); ++k) {
    double* c = b.mutable_center(k);
    for (std::size_t j = 0; j < pc.dim; ++j) c[j] += shift[j];
  }
  EXPECT_NEAR(ComputeEmd(a, b).ValueOrDie(), before, 1e-8);
}

TEST_P(EmdMetricPropertyTest, CommonWeightScaleInvariance) {
  const PropertyCase& pc = GetParam();
  Rng rng(pc.seed + 4);
  Signature a = RandomSignature(&rng, pc.k1, pc.dim, false);
  Signature b = RandomSignature(&rng, pc.k2, pc.dim, false);
  const double before = ComputeEmd(a, b).ValueOrDie();
  for (std::size_t i = 0; i < a.size(); ++i) a.mutable_weights()[i] *= 7.5;
  for (std::size_t i = 0; i < b.size(); ++i) b.mutable_weights()[i] *= 7.5;
  EXPECT_NEAR(ComputeEmd(a, b).ValueOrDie(), before, 1e-8);
}

TEST_P(EmdMetricPropertyTest, MergingCoincidentCentersIsNeutral) {
  const PropertyCase& pc = GetParam();
  Rng rng(pc.seed + 5);
  Signature a = RandomSignature(&rng, pc.k1, pc.dim, true);
  Signature b = RandomSignature(&rng, pc.k2, pc.dim, true);
  const double before = ComputeEmd(a, b).ValueOrDie();
  // Split a's first cluster into two half-weight copies.
  Signature a_split = a;
  a_split.mutable_weights()[0] /= 2.0;
  a_split.AddCenter(a.center(0), a_split.weight(0));
  EXPECT_NEAR(ComputeEmd(a_split, b).ValueOrDie(), before, 1e-8);
}

TEST_P(EmdMetricPropertyTest, FlowMatrixIsConsistent) {
  // The detailed solution must satisfy all the paper's constraints: flows
  // non-negative (Eq. 8), marginals bounded by the weights (Eqs. 9-10), the
  // moved mass equal to min of the totals (Eq. 11), and the reported cost and
  // EMD consistent with the flow matrix (Eq. 12).
  const PropertyCase& pc = GetParam();
  Rng rng(pc.seed + 6);
  Signature a = RandomSignature(&rng, pc.k1, pc.dim, false);
  Signature b = RandomSignature(&rng, pc.k2, pc.dim, false);
  const GroundDistanceFn ground =
      MakeGroundDistance(GroundDistance::kEuclidean);
  EmdSolution sol = ComputeEmdDetailed(a, b, ground).ValueOrDie();

  double recomputed_cost = 0.0;
  double recomputed_flow = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < b.size(); ++j) {
      EXPECT_GE(sol.flow(i, j), -1e-9);  // Eq. 8.
      row += sol.flow(i, j);
      recomputed_cost += sol.flow(i, j) * ground(a.center(i), b.center(j));
      recomputed_flow += sol.flow(i, j);
    }
    EXPECT_LE(row, a.weight(i) + 1e-8);  // Eq. 9.
  }
  for (std::size_t j = 0; j < b.size(); ++j) {
    double col = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) col += sol.flow(i, j);
    EXPECT_LE(col, b.weight(j) + 1e-8);  // Eq. 10.
  }
  const double expected_flow = std::min(a.TotalWeight(), b.TotalWeight());
  EXPECT_NEAR(recomputed_flow, expected_flow, 1e-7);       // Eq. 11.
  EXPECT_NEAR(sol.total_flow, expected_flow, 1e-7);
  EXPECT_NEAR(recomputed_cost, sol.cost, 1e-7);
  EXPECT_NEAR(sol.emd, sol.cost / sol.total_flow, 1e-9);   // Eq. 12.
}

TEST_P(EmdMetricPropertyTest, SolverAgreesWithItselfUnderArgumentSwap) {
  const PropertyCase& pc = GetParam();
  Rng rng(pc.seed + 7);
  Signature a = RandomSignature(&rng, pc.k1, pc.dim, false);
  Signature b = RandomSignature(&rng, pc.k2, pc.dim, false);
  const GroundDistanceFn ground =
      MakeGroundDistance(GroundDistance::kEuclidean);
  EmdSolution ab = ComputeEmdDetailed(a, b, ground).ValueOrDie();
  EmdSolution ba = ComputeEmdDetailed(b, a, ground).ValueOrDie();
  EXPECT_NEAR(ab.emd, ba.emd, 1e-8);
  EXPECT_NEAR(ab.cost, ba.cost, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(
    RandomSignatures, EmdMetricPropertyTest,
    ::testing::Values(PropertyCase{11, 1, 1, 1, 1}, PropertyCase{12, 2, 3, 2, 1},
                      PropertyCase{13, 3, 3, 3, 2}, PropertyCase{14, 5, 4, 6, 2},
                      PropertyCase{15, 8, 8, 8, 3}, PropertyCase{16, 4, 7, 2, 4},
                      PropertyCase{17, 6, 2, 5, 5},
                      PropertyCase{18, 10, 10, 10, 2}));

}  // namespace
}  // namespace bagcpd
