#include "bagcpd/emd/min_cost_flow.h"

#include <gtest/gtest.h>

namespace bagcpd {
namespace {

TEST(MinCostFlowTest, SingleArc) {
  MinCostFlow net(2);
  const int arc = net.AddArc(0, 1, 5.0, 2.0);
  Result<FlowSolution> sol = net.Solve(0, 1, 3.0);
  ASSERT_TRUE(sol.ok());
  EXPECT_DOUBLE_EQ(sol->flow, 3.0);
  EXPECT_DOUBLE_EQ(sol->cost, 6.0);
  EXPECT_DOUBLE_EQ(net.FlowOn(arc), 3.0);
}

TEST(MinCostFlowTest, PrefersCheaperPath) {
  // Two parallel 2-hop paths: cost 1 (cap 2) vs cost 10 (cap 10).
  MinCostFlow net(4);
  const int cheap1 = net.AddArc(0, 1, 2.0, 0.5);
  const int cheap2 = net.AddArc(1, 3, 2.0, 0.5);
  const int costly1 = net.AddArc(0, 2, 10.0, 5.0);
  const int costly2 = net.AddArc(2, 3, 10.0, 5.0);
  Result<FlowSolution> sol = net.Solve(0, 3, 5.0);
  ASSERT_TRUE(sol.ok());
  EXPECT_DOUBLE_EQ(sol->flow, 5.0);
  // 2 units over the cheap path (cost 1 each) + 3 over the costly (cost 10).
  EXPECT_DOUBLE_EQ(sol->cost, 2.0 * 1.0 + 3.0 * 10.0);
  EXPECT_DOUBLE_EQ(net.FlowOn(cheap1), 2.0);
  EXPECT_DOUBLE_EQ(net.FlowOn(cheap2), 2.0);
  EXPECT_DOUBLE_EQ(net.FlowOn(costly1), 3.0);
  EXPECT_DOUBLE_EQ(net.FlowOn(costly2), 3.0);
}

TEST(MinCostFlowTest, InfeasibleAmountFails) {
  MinCostFlow net(2);
  net.AddArc(0, 1, 1.0, 1.0);
  EXPECT_FALSE(net.Solve(0, 1, 2.0).ok());
}

TEST(MinCostFlowTest, ZeroAmountIsTrivial) {
  MinCostFlow net(2);
  net.AddArc(0, 1, 1.0, 1.0);
  Result<FlowSolution> sol = net.Solve(0, 1, 0.0);
  ASSERT_TRUE(sol.ok());
  EXPECT_DOUBLE_EQ(sol->flow, 0.0);
  EXPECT_DOUBLE_EQ(sol->cost, 0.0);
}

TEST(MinCostFlowTest, DisconnectedFails) {
  MinCostFlow net(3);
  net.AddArc(0, 1, 5.0, 1.0);  // Node 2 unreachable.
  EXPECT_FALSE(net.Solve(0, 2, 1.0).ok());
}

TEST(MinCostFlowTest, RealValuedCapacities) {
  MinCostFlow net(3);
  net.AddArc(0, 1, 0.3, 1.0);
  net.AddArc(0, 1, 0.7, 2.0);
  net.AddArc(1, 2, 1.0, 0.0);
  Result<FlowSolution> sol = net.Solve(0, 2, 1.0);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->cost, 0.3 * 1.0 + 0.7 * 2.0, 1e-9);
}

TEST(MinCostFlowTest, BipartiteTransportation) {
  // 2 supplies (3, 2), 2 demands (2, 3); classic transportation optimum.
  // Costs: s0->d0: 1, s0->d1: 4, s1->d0: 3, s1->d1: 1.
  // Optimal: s0->d0: 2, s0->d1: 1, s1->d1: 2 => 2 + 4 + 2 = 8.
  MinCostFlow net(6);  // source=0, s0=1, s1=2, d0=3, d1=4, sink=5.
  net.AddArc(0, 1, 3.0, 0.0);
  net.AddArc(0, 2, 2.0, 0.0);
  net.AddArc(1, 3, 3.0, 1.0);
  net.AddArc(1, 4, 3.0, 4.0);
  net.AddArc(2, 3, 2.0, 3.0);
  net.AddArc(2, 4, 2.0, 1.0);
  net.AddArc(3, 5, 2.0, 0.0);
  net.AddArc(4, 5, 3.0, 0.0);
  Result<FlowSolution> sol = net.Solve(0, 5, 5.0);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->cost, 8.0, 1e-9);
}

TEST(MinCostFlowTest, OutOfRangeNodesRejected) {
  MinCostFlow net(2);
  net.AddArc(0, 1, 1.0, 1.0);
  EXPECT_FALSE(net.Solve(0, 7, 1.0).ok());
  EXPECT_FALSE(net.Solve(0, 1, -1.0).ok());
}

}  // namespace
}  // namespace bagcpd
