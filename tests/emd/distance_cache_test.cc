#include "bagcpd/emd/distance_cache.h"

#include <gtest/gtest.h>

namespace bagcpd {
namespace {

TEST(DistanceCacheTest, MemoizesSymmetricPairs) {
  int calls = 0;
  PairwiseDistanceCache cache(
      [&](std::uint64_t i, std::uint64_t j) -> Result<double> {
        ++calls;
        return static_cast<double>(i * 100 + j);
      });
  EXPECT_DOUBLE_EQ(cache.Get(1, 2).ValueOrDie(), 102.0);
  EXPECT_EQ(calls, 1);
  // Same pair, either order: cached.
  EXPECT_DOUBLE_EQ(cache.Get(2, 1).ValueOrDie(), 102.0);
  EXPECT_DOUBLE_EQ(cache.Get(1, 2).ValueOrDie(), 102.0);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(DistanceCacheTest, DiagonalIsFreeZero) {
  int calls = 0;
  PairwiseDistanceCache cache(
      [&](std::uint64_t, std::uint64_t) -> Result<double> {
        ++calls;
        return 1.0;
      });
  EXPECT_DOUBLE_EQ(cache.Get(7, 7).ValueOrDie(), 0.0);
  EXPECT_EQ(calls, 0);
}

TEST(DistanceCacheTest, EvictBeforeDropsOldPairs) {
  int calls = 0;
  PairwiseDistanceCache cache(
      [&](std::uint64_t, std::uint64_t) -> Result<double> {
        ++calls;
        return 1.0;
      });
  cache.Get(0, 5);
  cache.Get(4, 5);
  cache.Get(5, 6);
  EXPECT_EQ(cache.size(), 3u);
  cache.EvictBefore(5);
  // Pairs touching 0 and 4 are gone; (5, 6) survives.
  EXPECT_EQ(cache.size(), 1u);
  cache.Get(5, 6);
  EXPECT_EQ(calls, 3);  // Still cached.
  cache.Get(4, 5);
  EXPECT_EQ(calls, 4);  // Recomputed after eviction.
}

TEST(DistanceCacheTest, PropagatesComputeErrors) {
  PairwiseDistanceCache cache(
      [&](std::uint64_t, std::uint64_t) -> Result<double> {
        return Status::Invalid("boom");
      });
  EXPECT_FALSE(cache.Get(1, 2).ok());
  // Errors are not cached.
  EXPECT_EQ(cache.size(), 0u);
}

}  // namespace
}  // namespace bagcpd
