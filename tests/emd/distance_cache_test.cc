#include "bagcpd/emd/distance_cache.h"

#include <gtest/gtest.h>

namespace bagcpd {
namespace {

TEST(DistanceCacheTest, MemoizesSymmetricPairs) {
  int calls = 0;
  PairwiseDistanceCache cache(
      [&](std::uint64_t i, std::uint64_t j) -> Result<double> {
        ++calls;
        return static_cast<double>(i * 100 + j);
      });
  EXPECT_DOUBLE_EQ(cache.Get(1, 2).ValueOrDie(), 102.0);
  EXPECT_EQ(calls, 1);
  // Same pair, either order: cached.
  EXPECT_DOUBLE_EQ(cache.Get(2, 1).ValueOrDie(), 102.0);
  EXPECT_DOUBLE_EQ(cache.Get(1, 2).ValueOrDie(), 102.0);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(DistanceCacheTest, DiagonalIsFreeZero) {
  int calls = 0;
  PairwiseDistanceCache cache(
      [&](std::uint64_t, std::uint64_t) -> Result<double> {
        ++calls;
        return 1.0;
      });
  EXPECT_DOUBLE_EQ(cache.Get(7, 7).ValueOrDie(), 0.0);
  EXPECT_EQ(calls, 0);
}

TEST(DistanceCacheTest, EvictBeforeDropsOldPairs) {
  int calls = 0;
  PairwiseDistanceCache cache(
      [&](std::uint64_t, std::uint64_t) -> Result<double> {
        ++calls;
        return 1.0;
      });
  cache.Get(0, 5);
  cache.Get(4, 5);
  cache.Get(5, 6);
  EXPECT_EQ(cache.size(), 3u);
  cache.EvictBefore(5);
  // Pairs touching 0 and 4 are gone; (5, 6) survives.
  EXPECT_EQ(cache.size(), 1u);
  cache.Get(5, 6);
  EXPECT_EQ(calls, 3);  // Still cached.
  cache.Get(4, 5);
  EXPECT_EQ(calls, 4);  // Recomputed after eviction.
}

TEST(DistanceCacheTest, IndicesBeyond32BitsDoNotCollide) {
  // Regression: the key used to be (i << 32) | (j & 0xFFFFFFFF), so the pair
  // (0, 2^32 + 1) collided with (0, 1) once a stream ran long enough.
  int calls = 0;
  PairwiseDistanceCache cache(
      [&](std::uint64_t i, std::uint64_t j) -> Result<double> {
        ++calls;
        return static_cast<double>(i) * 3.0 + static_cast<double>(j);
      });
  const std::uint64_t big = (1ULL << 32) + 1;
  EXPECT_DOUBLE_EQ(cache.Get(0, 1).ValueOrDie(), 1.0);
  EXPECT_DOUBLE_EQ(cache.Get(0, big).ValueOrDie(),
                   static_cast<double>(big));
  EXPECT_EQ(calls, 2);  // Distinct pairs, distinct entries.
  EXPECT_EQ(cache.size(), 2u);
  // High bits of the smaller index matter too.
  const std::uint64_t huge = 1ULL << 33;
  EXPECT_DOUBLE_EQ(cache.Get(huge, huge + 1).ValueOrDie(),
                   static_cast<double>(huge) * 3.0 +
                       static_cast<double>(huge + 1));
  EXPECT_EQ(calls, 3);
  // Eviction keyed by the full smaller index.
  cache.EvictBefore(huge);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.Contains(huge, huge + 1));
}

TEST(DistanceCacheTest, ContainsAndPutSupportExternalPrefill) {
  int calls = 0;
  PairwiseDistanceCache cache(
      [&](std::uint64_t, std::uint64_t) -> Result<double> {
        ++calls;
        return 9.0;
      });
  EXPECT_FALSE(cache.Contains(1, 2));
  EXPECT_TRUE(cache.Contains(3, 3));  // Diagonal is implicitly cached.
  cache.Put(1, 2, 4.5);
  EXPECT_TRUE(cache.Contains(2, 1));
  EXPECT_EQ(cache.misses(), 1u);  // A Put of an absent pair counts as a miss.
  EXPECT_DOUBLE_EQ(cache.Get(1, 2).ValueOrDie(), 4.5);
  EXPECT_EQ(calls, 0);  // Prefilled: the compute fn never ran.
  EXPECT_EQ(cache.hits(), 1u);
  cache.Put(1, 2, 99.0);  // No-op when present.
  EXPECT_DOUBLE_EQ(cache.Get(1, 2).ValueOrDie(), 4.5);
}

TEST(DistanceCacheTest, PropagatesComputeErrors) {
  PairwiseDistanceCache cache(
      [&](std::uint64_t, std::uint64_t) -> Result<double> {
        return Status::Invalid("boom");
      });
  EXPECT_FALSE(cache.Get(1, 2).ok());
  // Errors are not cached.
  EXPECT_EQ(cache.size(), 0u);
}

}  // namespace
}  // namespace bagcpd
