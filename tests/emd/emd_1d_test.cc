#include "bagcpd/emd/emd_1d.h"

#include <cmath>

#include <gtest/gtest.h>

#include "bagcpd/common/rng.h"
#include "bagcpd/emd/emd.h"
#include "bagcpd/emd/min_cost_flow.h"

namespace bagcpd {
namespace {

Signature Sig1d(const std::vector<double>& positions,
                const std::vector<double>& weights) {
  Signature s;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    s.AddCenter(Point{positions[i]}, weights[i]);
  }
  return s;
}

// The general solver, bypassing the automatic 1-d dispatch in ComputeEmd.
double SolverEmd(const Signature& a, const Signature& b) {
  return ComputeEmd(a, b, MakeGroundDistance(GroundDistance::kEuclidean))
      .ValueOrDie();
}

TEST(Emd1dTest, ApplicabilityConditions) {
  Signature a = Sig1d({0.0, 1.0}, {1.0, 1.0});
  Signature b = Sig1d({2.0}, {2.0});
  EXPECT_TRUE(Emd1dApplicable(a, b));
  Signature unequal = Sig1d({2.0}, {3.0});
  EXPECT_FALSE(Emd1dApplicable(a, unequal));
  Signature twod = Signature::FromCenters({{0.0, 0.0}}, {2.0});
  EXPECT_FALSE(Emd1dApplicable(a, twod));
  EXPECT_FALSE(ComputeEmd1d(a, unequal).ok());
}

TEST(Emd1dTest, HandValues) {
  // Point masses: distance between them.
  EXPECT_NEAR(
      ComputeEmd1d(Sig1d({0.0}, {1.0}), Sig1d({3.5}, {1.0})).ValueOrDie(),
      3.5, 1e-12);
  // Two-to-one merge: both units travel 1.
  EXPECT_NEAR(ComputeEmd1d(Sig1d({0.0, 2.0}, {1.0, 1.0}),
                           Sig1d({1.0}, {2.0}))
                  .ValueOrDie(),
              1.0, 1e-12);
  // Identical signatures: zero.
  Signature s = Sig1d({0.0, 5.0}, {1.0, 2.0});
  EXPECT_NEAR(ComputeEmd1d(s, s).ValueOrDie(), 0.0, 1e-12);
}

TEST(Emd1dTest, UnsortedCentersHandled) {
  Signature a = Sig1d({5.0, 0.0, 2.0}, {1.0, 1.0, 1.0});
  Signature b = Sig1d({1.0, 6.0, 2.0}, {1.0, 1.0, 1.0});
  EXPECT_NEAR(ComputeEmd1d(a, b).ValueOrDie(), SolverEmd(a, b), 1e-9);
}

// Property: the sweep matches the min-cost-flow solver exactly on random
// balanced 1-d instances.
class Emd1dEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Emd1dEquivalenceTest, MatchesTransportationSolver) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t k = static_cast<std::size_t>(rng.UniformInt(1, 12));
    const std::size_t l = static_cast<std::size_t>(rng.UniformInt(1, 12));
    Signature a, b;
    for (std::size_t i = 0; i < k; ++i) {
      const double x = rng.Uniform(-10.0, 10.0);
      a.AddCenter(Point{x}, rng.Uniform(0.1, 2.0));
    }
    for (std::size_t j = 0; j < l; ++j) {
      const double x = rng.Uniform(-10.0, 10.0);
      b.AddCenter(Point{x}, rng.Uniform(0.1, 2.0));
    }
    // Balance the totals.
    a = a.Normalized();
    b = b.Normalized();
    ASSERT_TRUE(Emd1dApplicable(a, b));
    EXPECT_NEAR(ComputeEmd1d(a, b).ValueOrDie(), SolverEmd(a, b), 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Emd1dEquivalenceTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(Emd1dTest, ComputeEmdDispatchesAutomatically) {
  // Normalized 1-d signatures: ComputeEmd must agree with the fast path
  // bit-for-bit (it IS the fast path) and with the solver numerically.
  Signature a = Sig1d({0.0, 1.0, 4.0}, {0.2, 0.3, 0.5});
  Signature b = Sig1d({2.0, 3.0}, {0.6, 0.4});
  const double via_dispatch = ComputeEmd(a, b).ValueOrDie();
  const double via_fast = ComputeEmd1d(a, b).ValueOrDie();
  EXPECT_DOUBLE_EQ(via_dispatch, via_fast);
  EXPECT_NEAR(via_dispatch, SolverEmd(a, b), 1e-9);
}

TEST(Emd1dTest, SquaredEuclideanStillUsesSolver) {
  // The fast path is only valid for |x - y|; squared ground distance must
  // fall through to the solver (values differ).
  Signature a = Sig1d({0.0, 4.0}, {0.5, 0.5});
  Signature b = Sig1d({1.0, 2.0}, {0.5, 0.5});
  const double abs_emd = ComputeEmd(a, b).ValueOrDie();
  const double sq_emd =
      ComputeEmd(a, b, GroundDistance::kSquaredEuclidean).ValueOrDie();
  EXPECT_NE(abs_emd, sq_emd);
}

TEST(Emd1dTest, TranslationInvariance) {
  Signature a = Sig1d({0.0, 1.0}, {0.5, 0.5});
  Signature b = Sig1d({2.0, 5.0}, {0.7, 0.3});
  const double before = ComputeEmd1d(a, b).ValueOrDie();
  for (std::size_t k = 0; k < a.size(); ++k) a.mutable_center(k)[0] += 100.0;
  for (std::size_t k = 0; k < b.size(); ++k) b.mutable_center(k)[0] += 100.0;
  EXPECT_NEAR(ComputeEmd1d(a, b).ValueOrDie(), before, 1e-9);
}

}  // namespace
}  // namespace bagcpd
