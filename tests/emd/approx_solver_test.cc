// Approximate-EMD solver contract tests: convergence properties (sinkhorn ->
// exact as eps -> 0; sliced exact in d = 1 and Cauchy-stable in d > 1),
// degenerate instances, exact-kind bitwise parity with EmdWorkspace,
// zero-steady-state-allocation reuse, the per-owner byte-ceiling policy, and
// end-to-end determinism of approximate detectors across pool sizes and
// engine shard counts.

#include "bagcpd/emd/approx/emd_solver.h"

#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bagcpd/common/rng.h"
#include "bagcpd/core/detector.h"
#include "bagcpd/data/gmm.h"
#include "bagcpd/emd/approx/options.h"
#include "bagcpd/emd/approx/sinkhorn.h"
#include "bagcpd/emd/approx/sliced.h"
#include "bagcpd/emd/transport_solver.h"
#include "bagcpd/runtime/stream_engine.h"
#include "bagcpd/runtime/thread_pool.h"

namespace bagcpd {
namespace {

Signature RandomNormalizedSignature(Rng* rng, std::size_t k, std::size_t dim) {
  Signature s;
  for (std::size_t i = 0; i < k; ++i) {
    Point c(dim);
    for (double& v : c) v = rng->Uniform(-5.0, 5.0);
    s.AddCenter(c, rng->Uniform(0.5, 3.0));
  }
  s.NormalizeInPlace();
  return s;
}

EmdSolverOptions SinkhornOptions(double eps, std::size_t iters = 2000,
                                 double tol = 1e-12) {
  EmdSolverOptions o;
  o.kind = EmdSolverKind::kSinkhorn;
  o.sinkhorn_eps = eps;
  o.sinkhorn_max_iters = iters;
  o.sinkhorn_tolerance = tol;
  return o;
}

EmdSolverOptions SlicedOptions(std::size_t n) {
  EmdSolverOptions o;
  o.kind = EmdSolverKind::kSliced;
  o.sliced_projections = n;
  return o;
}

TEST(SinkhornEmdTest, ConvergesToExactFromAboveAsEpsShrinks) {
  Rng rng(71);
  EmdSolver solver;
  double prev_mean_err = std::numeric_limits<double>::infinity();
  double first_mean_err = 0.0, last_mean_err = 0.0;
  const std::vector<double> eps_ladder = {0.8, 0.4, 0.2, 0.1, 0.05};
  for (std::size_t e = 0; e < eps_ladder.size(); ++e) {
    double mean_err = 0.0;
    Rng pair_rng(202);  // Same pairs at every eps.
    const int kPairs = 12;
    for (int p = 0; p < kPairs; ++p) {
      const Signature a = RandomNormalizedSignature(&pair_rng, 6, 2);
      const Signature b = RandomNormalizedSignature(&pair_rng, 5, 2);
      const double exact =
          solver.workspace()
              .Compute(a, b, GroundDistance::kSquaredEuclidean)
              .ValueOrDie();
      const double approx =
          solver
              .Compute(a, b, GroundDistance::kSquaredEuclidean,
                       SinkhornOptions(eps_ladder[e]))
              .ValueOrDie();
      // The entropic plan is a feasible transport plan, so its cost can dip
      // below exact only by the (tolerance-bounded) marginal violation.
      EXPECT_GE(approx, exact - 1e-6)
          << "pair " << p << " eps " << eps_ladder[e];
      mean_err += std::abs(approx - exact);
    }
    mean_err /= kPairs;
    if (e == 0) first_mean_err = mean_err;
    last_mean_err = mean_err;
    // Monotone improvement down the ladder (deterministic inputs).
    EXPECT_LE(mean_err, prev_mean_err + 1e-12) << "eps " << eps_ladder[e];
    prev_mean_err = mean_err;
  }
  // And the improvement is substantial, not vacuous.
  EXPECT_LT(last_mean_err, 0.25 * first_mean_err);
}

TEST(SinkhornEmdTest, RejectsUnderflowingEpsInsteadOfReturningNoise) {
  Rng rng(5);
  const Signature a = RandomNormalizedSignature(&rng, 4, 2);
  const Signature b = RandomNormalizedSignature(&rng, 4, 2);
  EmdSolver solver;
  Result<double> r = solver.Compute(a, b, GroundDistance::kSquaredEuclidean,
                                    SinkhornOptions(1e-6));
  ASSERT_FALSE(r.ok());
}

TEST(SlicedEmdTest, MatchesExactInOneDimension) {
  Rng rng(17);
  EmdSolver solver;
  for (int p = 0; p < 10; ++p) {
    const Signature a = RandomNormalizedSignature(&rng, 1 + p % 7, 1);
    const Signature b = RandomNormalizedSignature(&rng, 7 - p % 6, 1);
    const double exact =
        solver.workspace()
            .Compute(a, b, GroundDistance::kEuclidean)
            .ValueOrDie();
    for (std::size_t n : {std::size_t{1}, std::size_t{4}, std::size_t{16}}) {
      const double sliced =
          solver
              .Compute(a, b, GroundDistance::kEuclidean, SlicedOptions(n))
              .ValueOrDie();
      // In d = 1 every projection is +/-x, so any n recovers the exact 1-d
      // transport, up to accumulation order.
      EXPECT_NEAR(sliced, exact, 1e-9 * (1.0 + exact)) << "pair " << p;
    }
  }
}

TEST(SlicedEmdTest, LowerBoundsExactAndStabilizesInHigherDimensions) {
  Rng rng(29);
  EmdSolver solver;
  for (int p = 0; p < 8; ++p) {
    const Signature a = RandomNormalizedSignature(&rng, 6, 3);
    const Signature b = RandomNormalizedSignature(&rng, 6, 3);
    const double exact =
        solver.workspace()
            .Compute(a, b, GroundDistance::kEuclidean)
            .ValueOrDie();
    const double s8 =
        solver.Compute(a, b, GroundDistance::kEuclidean, SlicedOptions(8))
            .ValueOrDie();
    const double s64 =
        solver.Compute(a, b, GroundDistance::kEuclidean, SlicedOptions(64))
            .ValueOrDie();
    const double s256 =
        solver.Compute(a, b, GroundDistance::kEuclidean, SlicedOptions(256))
            .ValueOrDie();
    // Projection is 1-Lipschitz: every slice (and thus the average)
    // lower-bounds the Euclidean EMD.
    EXPECT_LE(s8, exact + 1e-9) << "pair " << p;
    EXPECT_LE(s64, exact + 1e-9) << "pair " << p;
    // Cauchy stabilization as n grows (NOT convergence to exact; see
    // sliced.h). The direction sets are nested prefixes, so the estimates
    // settle toward the n -> infinity sliced value.
    EXPECT_LT(std::abs(s256 - s64), std::abs(s256 - s8) + 1e-12)
        << "pair " << p;
  }
}

TEST(ApproxEmdTest, DegenerateInstances) {
  EmdSolver solver;
  // K = 1 vs K = 1, equal centers: all solvers report zero.
  const Signature point_a = Signature::FromFlat({1.0, 2.0}, 2, {1.0});
  const Signature point_b = Signature::FromFlat({1.0, 2.0}, 2, {1.0});
  for (const EmdSolverOptions& o :
       {SinkhornOptions(0.1), SlicedOptions(4), EmdSolverOptions{}}) {
    const double v =
        solver.Compute(point_a, point_b, GroundDistance::kEuclidean, o)
            .ValueOrDie();
    EXPECT_EQ(v, 0.0) << EmdSolverSpecString(o);
  }

  // K = 1 vs K = 1, distinct centers: the plan is forced, every solver
  // returns the ground distance.
  const Signature far_b = Signature::FromFlat({4.0, 6.0}, 2, {1.0});
  const double dist =
      solver.workspace()
          .Compute(point_a, far_b, GroundDistance::kEuclidean)
          .ValueOrDie();
  EXPECT_NEAR(solver
                  .Compute(point_a, far_b, GroundDistance::kEuclidean,
                           SinkhornOptions(0.1))
                  .ValueOrDie(),
              dist, 1e-9 * dist);
  EXPECT_NEAR(solver
                  .Compute(point_a, far_b, GroundDistance::kEuclidean,
                           SlicedOptions(16))
                  .ValueOrDie(),
              dist, 0.5 * dist);  // Sliced lower-bounds in d > 1.

  // Extreme mass ratios: both approximate solvers normalize to unit mass,
  // so scaling every weight by 1e6 (or 1e-6) must not move the value.
  Rng rng(13);
  const Signature a = RandomNormalizedSignature(&rng, 5, 2);
  const Signature b = RandomNormalizedSignature(&rng, 4, 2);
  for (const double scale : {1e6, 1e-6}) {
    Signature sa = a;
    Signature sb = b;
    for (std::size_t i = 0; i < sa.size(); ++i) {
      sa.set_weight(i, sa.weight(i) * scale);
    }
    for (std::size_t i = 0; i < sb.size(); ++i) {
      sb.set_weight(i, sb.weight(i) * scale);
    }
    for (const EmdSolverOptions& o : {SinkhornOptions(0.1), SlicedOptions(8)}) {
      const double base =
          solver.Compute(a, b, GroundDistance::kSquaredEuclidean, o)
              .ValueOrDie();
      const double scaled =
          solver.Compute(sa, sb, GroundDistance::kSquaredEuclidean, o)
              .ValueOrDie();
      EXPECT_NEAR(scaled, base, 1e-9 * (1.0 + std::abs(base)))
          << EmdSolverSpecString(o) << " scale " << scale;
    }
  }
}

TEST(ApproxEmdTest, ExactKindIsBitwiseIdenticalToWorkspace) {
  Rng rng(47);
  EmdSolver solver;  // Default options: exact.
  EmdWorkspace workspace;
  for (int p = 0; p < 10; ++p) {
    const Signature a = RandomNormalizedSignature(&rng, 2 + p % 5, 3);
    const Signature b = RandomNormalizedSignature(&rng, 6 - p % 5, 3);
    for (const GroundDistance g :
         {GroundDistance::kSquaredEuclidean, GroundDistance::kEuclidean,
          GroundDistance::kManhattan}) {
      EXPECT_EQ(solver.Compute(a, b, g).ValueOrDie(),
                workspace.Compute(a, b, g).ValueOrDie());
    }
  }
}

TEST(ApproxEmdTest, DeterministicAcrossSolverInstancesAndZeroSteadyAllocs) {
  for (const EmdSolverOptions& o : {SinkhornOptions(0.1), SlicedOptions(16)}) {
    std::vector<double> first_pass;
    EmdSolver solver(o);
    Rng rng(99);
    std::vector<Signature> as, bs;
    for (int p = 0; p < 8; ++p) {
      as.push_back(RandomNormalizedSignature(&rng, 3 + p % 4, 2));
      bs.push_back(RandomNormalizedSignature(&rng, 6 - p % 4, 2));
    }
    for (int p = 0; p < 8; ++p) {
      first_pass.push_back(
          solver.Compute(as[p], bs[p], GroundDistance::kSquaredEuclidean)
              .ValueOrDie());
    }
    // Second pass over the same shapes: the allocation counter must freeze.
    const std::uint64_t allocs_after_peak = solver.allocation_count();
    for (int round = 0; round < 3; ++round) {
      for (int p = 0; p < 8; ++p) {
        EXPECT_EQ(
            solver.Compute(as[p], bs[p], GroundDistance::kSquaredEuclidean)
                .ValueOrDie(),
            first_pass[p])
            << EmdSolverSpecString(o);
      }
    }
    EXPECT_EQ(solver.allocation_count(), allocs_after_peak)
        << EmdSolverSpecString(o);

    // A fresh solver reproduces every value bitwise.
    EmdSolver fresh(o);
    for (int p = 0; p < 8; ++p) {
      EXPECT_EQ(fresh.Compute(as[p], bs[p], GroundDistance::kSquaredEuclidean)
                    .ValueOrDie(),
                first_pass[p])
          << EmdSolverSpecString(o);
    }
  }
}

TEST(ApproxEmdTest, ByteCeilingReleasesAllScratchAndRegrows) {
  Rng rng(3);
  const Signature big_a = RandomNormalizedSignature(&rng, 48, 3);
  const Signature big_b = RandomNormalizedSignature(&rng, 48, 3);
  EmdSolver solver(SinkhornOptions(0.2));
  const double value =
      solver.Compute(big_a, big_b, GroundDistance::kSquaredEuclidean)
          .ValueOrDie();
  ASSERT_GT(solver.retained_bytes(), 0u);

  // No ceiling: ShrinkToCeiling is a no-op.
  solver.ShrinkToCeiling();
  EXPECT_GT(solver.retained_bytes(), 0u);

  // Ceiling above the footprint: still a no-op.
  solver.set_retained_byte_ceiling(solver.retained_bytes() + 1024);
  solver.ShrinkToCeiling();
  EXPECT_GT(solver.retained_bytes(), 0u);

  // Ceiling below the footprint: everything is released, and the next solve
  // regrows to the working set with identical output.
  solver.set_retained_byte_ceiling(1024);
  solver.ShrinkToCeiling();
  EXPECT_EQ(solver.retained_bytes(), 0u);
  const std::uint64_t allocs_before_regrow = solver.allocation_count();
  EXPECT_EQ(solver.Compute(big_a, big_b, GroundDistance::kSquaredEuclidean)
                .ValueOrDie(),
            value);
  EXPECT_GT(solver.allocation_count(), allocs_before_regrow);
}

// --- End-to-end determinism: pool sizes and shard counts ------------------

BagSequence ApproxJumpStream(std::size_t length, std::size_t jump_at,
                             std::uint64_t seed) {
  Rng rng(seed);
  const GaussianMixture before = GaussianMixture::Isotropic({0.0, 0.0}, 0.6);
  const GaussianMixture after = GaussianMixture::Isotropic({3.0, 3.0}, 0.6);
  BagSequence bags;
  for (std::size_t t = 0; t < length; ++t) {
    const GaussianMixture& mix =
        (jump_at != 0 && t >= jump_at) ? after : before;
    bags.push_back(mix.SampleBag(20, &rng));
  }
  return bags;
}

TEST(ApproxEmdTest, DetectorResultsAreBitwiseIdenticalForAnyPoolSize) {
  const BagSequence bags = ApproxJumpStream(16, 8, 616);
  for (const std::string& spec : {std::string("sinkhorn:0.1"),
                                  std::string("sliced:8")}) {
    DetectorOptions options;
    options.tau = 4;
    options.tau_prime = 4;
    options.bootstrap.replicates = 30;
    options.signature.k = 4;
    options.signature.normalize = true;
    options.seed = 11;
    options.emd = ParseEmdSolverSpec(spec).ValueOrDie();

    std::vector<StepResult> baseline;
    for (const std::size_t threads :
         {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
      auto detector = BagStreamDetector::Create(options).MoveValueUnsafe();
      std::unique_ptr<ThreadPool> pool;
      if (threads > 0) {
        pool = std::make_unique<ThreadPool>(threads);
        detector->set_thread_pool(pool.get());
      }
      const std::vector<StepResult> results =
          detector->Run(bags).ValueOrDie();
      if (baseline.empty()) {
        baseline = results;
        ASSERT_FALSE(baseline.empty());
        continue;
      }
      ASSERT_EQ(results.size(), baseline.size()) << spec;
      for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].time, baseline[i].time) << spec;
        EXPECT_EQ(results[i].score, baseline[i].score)
            << spec << " @ " << threads << " threads";
        EXPECT_EQ(results[i].ci_lo, baseline[i].ci_lo) << spec;
        EXPECT_EQ(results[i].ci_up, baseline[i].ci_up) << spec;
      }
    }
  }
}

TEST(ApproxEmdTest, EngineResultsAreBitwiseIdenticalForAnyShardCount) {
  std::map<std::string, BagSequence> streams;
  for (int s = 0; s < 4; ++s) {
    streams["stream-" + std::to_string(s)] =
        ApproxJumpStream(14, (s % 2 == 0) ? 7 : 0, 800 + s);
  }
  for (const std::string& spec : {std::string("sinkhorn:0.1"),
                                  std::string("sliced:8")}) {
    StreamEngineOptions base;
    base.detector.tau = 4;
    base.detector.tau_prime = 4;
    base.detector.bootstrap.replicates = 25;
    base.detector.signature.k = 4;
    base.detector.signature.normalize = true;
    base.detector.emd = ParseEmdSolverSpec(spec).ValueOrDie();
    base.seed = 77;

    std::map<std::string, std::vector<StepResult>> baseline;
    for (const std::size_t shards :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
      StreamEngineOptions options = base;
      options.num_shards = shards;
      auto engine = StreamEngine::Create(options).MoveValueUnsafe();
      for (const auto& [key, bags] : streams) {
        for (const Bag& bag : bags) {
          ASSERT_TRUE(engine->Submit(key, bag).ok());
        }
      }
      engine->Flush();
      std::map<std::string, std::vector<StepResult>> grouped;
      for (StreamStepResult& r : engine->Drain()) {
        grouped[r.stream_id].push_back(r.step);
      }
      if (baseline.empty()) {
        baseline = std::move(grouped);
        ASSERT_FALSE(baseline.empty());
        continue;
      }
      ASSERT_EQ(grouped.size(), baseline.size()) << spec;
      for (const auto& [key, series] : baseline) {
        const std::vector<StepResult>& got = grouped[key];
        ASSERT_EQ(got.size(), series.size()) << spec << " " << key;
        for (std::size_t i = 0; i < series.size(); ++i) {
          EXPECT_EQ(got[i].time, series[i].time) << spec << " " << key;
          EXPECT_EQ(got[i].score, series[i].score)
              << spec << " " << key << " @ " << shards << " shards";
          EXPECT_EQ(got[i].ci_lo, series[i].ci_lo) << spec << " " << key;
          EXPECT_EQ(got[i].ci_up, series[i].ci_up) << spec << " " << key;
        }
      }
    }
  }
}

}  // namespace
}  // namespace bagcpd
