// The fault matrix: every fault point exercised against each recovery mode —
// contained (quarantine-on-first-failure), retried/fresh-restart (a fault
// budget, no snapshots), recovered-from-checkpoint (rolling snapshots), and
// fresh-after-failed-restores (a poisoned snapshot) — with the surviving
// streams' outputs bitwise-identical to a fault-free run across shard counts
// {1, 2, 4} and, for the detector-level points, thread pools {1, 2, 8}.
// Corrupt and truncated spill files ride the same ladder as injected faults.
// Every armed test uses ScopedFault (the injector is process-wide).

#include <dirent.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bagcpd/api/spec.h"
#include "bagcpd/common/rng.h"
#include "bagcpd/core/detector.h"
#include "bagcpd/data/gmm.h"
#include "bagcpd/fault/fault_injector.h"
#include "bagcpd/runtime/stream_engine.h"
#include "bagcpd/runtime/thread_pool.h"

namespace bagcpd {
namespace {

using fault::FaultInjector;
using fault::ScopedFault;

DetectorOptions SmallDetector() {
  DetectorOptions options;
  options.tau = 3;
  options.tau_prime = 3;
  options.bootstrap.replicates = 0;  // Scores only; keeps the matrix fast.
  options.signature.method = SignatureMethod::kKMeans;
  options.signature.k = 3;
  return options;
}

StreamEngineOptions SmallEngine(std::size_t shards) {
  StreamEngineOptions options;
  options.num_shards = shards;
  options.seed = 5;
  options.detector = SmallDetector();
  return options;
}

BagSequence KeyStream(const std::string& key, std::size_t length) {
  Rng rng(1000 + Rng::StableHash64(key) % 97);
  const GaussianMixture before = GaussianMixture::Isotropic({0.0, 0.0}, 0.5);
  const GaussianMixture after = GaussianMixture::Isotropic({4.0, 4.0}, 0.5);
  BagSequence bags;
  for (std::size_t t = 0; t < length; ++t) {
    bags.push_back((t >= length / 2 ? after : before).SampleBag(14, &rng));
  }
  return bags;
}

std::map<std::string, BagSequence> Corpus(std::size_t keys,
                                          std::size_t length) {
  std::map<std::string, BagSequence> corpus;
  for (std::size_t i = 0; i < keys; ++i) {
    const std::string key = "stream-" + std::to_string(i);
    corpus[key] = KeyStream(key, length);
  }
  return corpus;
}

// Round-robin submission, time-major: a fixed global submission order, so
// every sequence-keyed recovery decision is reproducible.
void SubmitRange(StreamEngine* engine,
                 const std::map<std::string, BagSequence>& corpus,
                 std::size_t from, std::size_t to) {
  for (std::size_t t = from; t < to; ++t) {
    for (const auto& [key, bags] : corpus) {
      ASSERT_TRUE(engine->Submit(key, bags[t]).ok()) << key << " t=" << t;
    }
  }
}

std::map<std::string, std::vector<StepResult>> StepsOf(
    const std::vector<EngineEvent>& events) {
  std::map<std::string, std::vector<StepResult>> steps;
  for (const EngineEvent& event : events) {
    if (event.kind == EngineEvent::Kind::kStep) {
      steps[event.stream_id].push_back(event.step);
    }
  }
  return steps;
}

// Bitwise step-series comparison (NaN-tolerant on the CI columns).
void ExpectIdenticalSeries(
    const std::map<std::string, std::vector<StepResult>>& a,
    const std::map<std::string, std::vector<StepResult>>& b,
    const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (const auto& [key, steps] : a) {
    auto it = b.find(key);
    ASSERT_NE(it, b.end()) << what << " key " << key;
    ASSERT_EQ(steps.size(), it->second.size()) << what << " key " << key;
    for (std::size_t i = 0; i < steps.size(); ++i) {
      const StepResult& x = steps[i];
      const StepResult& y = it->second[i];
      EXPECT_EQ(x.time, y.time) << what << " " << key << " step " << i;
      EXPECT_EQ(x.score, y.score) << what << " " << key << " step " << i;
      EXPECT_TRUE((std::isnan(x.xi) && std::isnan(y.xi)) || x.xi == y.xi)
          << what << " " << key << " step " << i;
      EXPECT_EQ(x.alarm, y.alarm) << what << " " << key << " step " << i;
    }
  }
}

// Reference replay: a fresh detector seeded exactly as the engine would seed
// `key`, fed `bags` in order; collects every emitted step.
std::vector<StepResult> Replay(const StreamEngineOptions& engine_options,
                               const std::string& key,
                               const std::vector<const Bag*>& bags) {
  DetectorOptions per_stream = engine_options.detector;
  per_stream.seed =
      DerivePerStreamSeed(engine_options.seed, key, kDefaultProfileName);
  auto detector = BagStreamDetector::Create(per_stream).MoveValueUnsafe();
  std::vector<StepResult> out;
  for (const Bag* bag : bags) {
    auto step = detector->Push(*bag);
    EXPECT_TRUE(step.ok()) << step.status().ToString();
    if (step.ok() && step.ValueOrDie().has_value()) {
      out.push_back(*step.ValueOrDie());
    }
  }
  return out;
}

std::string MakeSpillDir() {
  std::string tmpl = ::testing::TempDir() + "bagcpd-fault-XXXXXX";
  const char* dir = mkdtemp(tmpl.data());
  EXPECT_NE(dir, nullptr);
  return tmpl;
}

std::vector<std::string> ListFiles(const std::string& dir) {
  std::vector<std::string> files;
  DIR* handle = opendir(dir.c_str());
  EXPECT_NE(handle, nullptr) << dir;
  if (handle == nullptr) return files;
  while (dirent* entry = readdir(handle)) {
    const std::string name = entry->d_name;
    if (name != "." && name != "..") files.push_back(dir + "/" + name);
  }
  closedir(handle);
  return files;
}

// ---------------------------------------------------------------------------
// detector.push: contained and budgeted recovery, shard-count invariance.

TEST(FaultMatrixTest, ContainedFaultQuarantinesOnlyTargetedStreams) {
  // Historical mode (max_stream_faults = 0): the injected failure quarantines
  // the targeted streams and nothing else. seeded-p keys the decision to the
  // per-stream seed, so WHICH streams fault is a pure function of the corpus
  // — identical at every shard count — and survivors stay bitwise equal to a
  // fault-free run.
  const auto corpus = Corpus(10, 12);

  auto clean = StreamEngine::Create(SmallEngine(2)).MoveValueUnsafe();
  SubmitRange(clean.get(), corpus, 0, 12);
  clean->Flush();
  const auto expected = StepsOf(clean->DrainEvents());

  std::set<std::string> baseline_faulted;
  bool first = true;
  for (std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    ScopedFault armed("detector.push:seeded-p:0.02:9");
    ASSERT_TRUE(armed.status().ok());
    auto engine = StreamEngine::Create(SmallEngine(shards)).MoveValueUnsafe();
    SubmitRange(engine.get(), corpus, 0, 12);
    engine->Flush();
    EXPECT_GT(armed.fired(), 0u) << shards << " shards";

    std::set<std::string> faulted;
    auto events = engine->DrainEvents();
    for (const EngineEvent& event : events) {
      if (event.kind == EngineEvent::Kind::kError) {
        EXPECT_NE(event.error.message().find("fault-injected: detector.push"),
                  std::string::npos)
            << event.error.ToString();
        faulted.insert(event.stream_id);
      }
      EXPECT_NE(event.kind, EngineEvent::Kind::kStreamFault)
          << "no contained faults without a budget";
    }
    ASSERT_FALSE(faulted.empty()) << shards << " shards";
    ASSERT_LT(faulted.size(), corpus.size()) << shards << " shards";
    if (first) {
      baseline_faulted = faulted;
      first = false;
    } else {
      EXPECT_EQ(faulted, baseline_faulted) << shards << " shards";
    }

    // Survivors: every result bitwise equal to the fault-free run.
    auto steps = StepsOf(events);
    std::map<std::string, std::vector<StepResult>> expected_survivors;
    for (const auto& [key, series] : expected) {
      if (faulted.count(key) == 0) expected_survivors[key] = series;
    }
    for (const std::string& key : faulted) steps.erase(key);
    ExpectIdenticalSeries(expected_survivors, steps,
                          "survivors @ " + std::to_string(shards) + " shards");
  }
}

TEST(FaultMatrixTest, BudgetedRestartIsBitwiseAcrossShardCounts) {
  // Same drill with a fault budget: targeted streams restart from scratch
  // instead of quarantining. Every recovery decision is keyed to per-stream
  // push ordinals, so the complete outcome — results, contained-fault count,
  // quarantine set — is identical for every shard count.
  const auto corpus = Corpus(10, 12);

  std::map<std::string, std::vector<StepResult>> baseline_steps;
  std::uint64_t baseline_faults = 0;
  std::set<std::string> baseline_errors;
  bool first = true;
  for (std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    ScopedFault armed("detector.push:seeded-p:0.02:9");
    ASSERT_TRUE(armed.status().ok());
    StreamEngineOptions options = SmallEngine(shards);
    options.max_stream_faults = 5;
    auto engine = StreamEngine::Create(options).MoveValueUnsafe();
    SubmitRange(engine.get(), corpus, 0, 12);
    engine->Flush();
    EXPECT_GT(engine->stream_fault_count(), 0u) << shards << " shards";

    std::set<std::string> errors;
    bool saw_contained = false;
    auto events = engine->DrainEvents();
    for (const EngineEvent& event : events) {
      if (event.kind == EngineEvent::Kind::kError) {
        errors.insert(event.stream_id);
      } else if (event.kind == EngineEvent::Kind::kStreamFault) {
        saw_contained = true;
        EXPECT_NE(event.error.message().find("fault-injected"),
                  std::string::npos);
      }
    }
    EXPECT_TRUE(saw_contained) << shards << " shards";
    const auto steps = StepsOf(events);
    if (first) {
      baseline_steps = steps;
      baseline_faults = engine->stream_fault_count();
      baseline_errors = errors;
      first = false;
      continue;
    }
    EXPECT_EQ(engine->stream_fault_count(), baseline_faults)
        << shards << " shards";
    EXPECT_EQ(errors, baseline_errors) << shards << " shards";
    ExpectIdenticalSeries(baseline_steps, steps,
                          "budgeted @ " + std::to_string(shards) + " shards");
  }
}

TEST(FaultMatrixTest, ThousandStreamDrillKeepsSurvivorsBitwise) {
  // The acceptance drill at production-ish fan-in: 1000 streams, a seeded
  // fault hitting a few hundred of them, a fault budget. A hit stream
  // recovers — or, when its fault ordinal keeps re-firing after each
  // restart, exhausts the budget and quarantines. Either way the engine
  // finishes, only targeted streams are affected, every unaffected stream
  // is bitwise-identical to a fault-free run — and the whole outcome is
  // identical at shards 1, 2, and 4.
  const auto corpus = Corpus(1000, 10);

  auto clean = StreamEngine::Create(SmallEngine(4)).MoveValueUnsafe();
  SubmitRange(clean.get(), corpus, 0, 10);
  clean->Flush();
  const auto expected = StepsOf(clean->DrainEvents());

  std::set<std::string> baseline_touched;
  std::map<std::string, std::vector<StepResult>> baseline_steps;
  bool first = true;
  for (std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    ScopedFault armed("detector.push:seeded-p:0.02:9");
    ASSERT_TRUE(armed.status().ok());
    StreamEngineOptions options = SmallEngine(shards);
    options.max_stream_faults = 5;
    auto engine = StreamEngine::Create(options).MoveValueUnsafe();
    SubmitRange(engine.get(), corpus, 0, 10);
    engine->Flush();
    EXPECT_GT(armed.fired(), 0u);

    std::set<std::string> touched;
    std::set<std::string> quarantined;
    auto events = engine->DrainEvents();
    for (const EngineEvent& event : events) {
      if (event.kind == EngineEvent::Kind::kStreamFault) {
        touched.insert(event.stream_id);
      } else if (event.kind == EngineEvent::Kind::kError) {
        // Past-budget quarantine: must be a stream the fault actually hit.
        EXPECT_NE(event.error.message().find("fault-injected"),
                  std::string::npos)
            << event.error.ToString();
        quarantined.insert(event.stream_id);
        touched.insert(event.stream_id);
      }
    }
    ASSERT_FALSE(touched.empty());
    ASSERT_LT(touched.size(), corpus.size());
    EXPECT_LT(quarantined.size(), touched.size())
        << "some hit streams must survive on the budget";
    const auto steps = StepsOf(events);

    // Survivors bitwise against the fault-free run.
    std::map<std::string, std::vector<StepResult>> expected_survivors;
    std::map<std::string, std::vector<StepResult>> got_survivors;
    for (const auto& [key, series] : expected) {
      if (touched.count(key) != 0) continue;
      expected_survivors[key] = series;
      auto it = steps.find(key);
      if (it != steps.end()) got_survivors[key] = it->second;
    }
    ExpectIdenticalSeries(expected_survivors, got_survivors,
                          "1k survivors @ " + std::to_string(shards));

    // And the complete outcome — including the faulted streams' recovered
    // series — is shard-invariant.
    if (first) {
      baseline_touched = touched;
      baseline_steps = steps;
      first = false;
    } else {
      EXPECT_EQ(touched, baseline_touched) << shards << " shards";
      ExpectIdenticalSeries(baseline_steps, steps,
                            "1k outcome @ " + std::to_string(shards));
    }
  }
}

// ---------------------------------------------------------------------------
// Snapshot-based recovery and the poisoned-snapshot fallback.

TEST(FaultMatrixTest, SnapshotRecoveryResumesFromRollingCheckpoint) {
  StreamEngineOptions options = SmallEngine(1);
  options.detector.bootstrap.replicates = 30;  // Snapshots carry RNG state.
  options.max_stream_faults = 1;
  options.snapshot_interval = 2;
  auto engine = StreamEngine::Create(options).MoveValueUnsafe();
  const BagSequence bags = KeyStream("s", 16);

  {
    // Push 7 faults; the rolling snapshot holds pushes 1..6, so the restore
    // loses nothing but the faulted bag itself.
    ScopedFault armed("detector.push:nth:7");
    ASSERT_TRUE(armed.status().ok());
    for (std::size_t t = 0; t < 7; ++t) {
      ASSERT_TRUE(engine->Submit("s", bags[t]).ok());
    }
    engine->Flush();
    EXPECT_EQ(armed.fired(), 1u);
  }
  for (std::size_t t = 7; t < 16; ++t) {
    ASSERT_TRUE(engine->Submit("s", bags[t]).ok());
  }
  engine->Flush();

  EXPECT_EQ(engine->stream_fault_count(), 1u);
  EXPECT_EQ(engine->restored_count(), 1u);
  bool saw_fault = false, saw_restore = false;
  const auto events = engine->DrainEvents();
  for (const EngineEvent& event : events) {
    if (event.kind == EngineEvent::Kind::kStreamFault) saw_fault = true;
    if (event.kind == EngineEvent::Kind::kRestore) saw_restore = true;
    EXPECT_NE(event.kind, EngineEvent::Kind::kError);
  }
  EXPECT_TRUE(saw_fault);
  EXPECT_TRUE(saw_restore);

  // Reference: bags 0..5 (the snapshot's six pushes), then 7.. (bag 6 was
  // consumed by the fault). The engine's full series must match bitwise.
  std::vector<const Bag*> fed;
  for (std::size_t t = 0; t < 6; ++t) fed.push_back(&bags[t]);
  for (std::size_t t = 7; t < 16; ++t) fed.push_back(&bags[t]);
  std::map<std::string, std::vector<StepResult>> expected;
  expected["s"] = Replay(options, "s", fed);
  ExpectIdenticalSeries(expected, StepsOf(events), "snapshot recovery");
}

TEST(FaultMatrixTest, PoisonedSnapshotFallsBackToFreshRestart) {
  // ckpt.import armed on every occurrence: the rehydrate fails, then both
  // restore attempts against the rolling snapshot fail, the snapshot is
  // declared poisoned, and the stream restarts from scratch — quarantine
  // never enters the picture.
  ScopedFault armed("ckpt.import:every-n:1");
  ASSERT_TRUE(armed.status().ok());

  StreamEngineOptions options = SmallEngine(1);
  options.spill_directory = MakeSpillDir();
  options.max_idle_submissions = 4;
  options.max_stream_faults = 3;
  options.snapshot_interval = 2;
  ASSERT_EQ(options.max_restore_failures, 2u);
  auto engine = StreamEngine::Create(options).MoveValueUnsafe();

  const BagSequence cold = KeyStream("cold", 16);
  for (std::size_t t = 0; t < 4; ++t) {
    ASSERT_TRUE(engine->Submit("cold", cold[t]).ok());
  }
  // Enough traffic to cross the periodic sweep threshold and spill "cold".
  const Bag filler = KeyStream("busy", 1).front();
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(engine->Submit("busy", filler).ok());
  }
  engine->Flush();
  ASSERT_EQ(engine->spilled_count(), 1u);

  // The next cold bag triggers rehydrate (1 failed import), then the ladder
  // burns both restore attempts (2 more) and falls back to scratch.
  for (std::size_t t = 4; t < 16; ++t) {
    ASSERT_TRUE(engine->Submit("cold", cold[t]).ok());
  }
  engine->Flush();
  EXPECT_EQ(FaultInjector::Global().fired_count(fault::FaultPoint::kCkptImport),
            3u);
  EXPECT_EQ(engine->stream_fault_count(), 1u);
  EXPECT_EQ(engine->restored_count(), 0u);

  std::map<std::string, std::vector<StepResult>> cold_steps;
  for (const EngineEvent& event : engine->DrainEvents()) {
    EXPECT_NE(event.kind, EngineEvent::Kind::kError) << event.error.ToString();
    if (event.kind == EngineEvent::Kind::kStep && event.stream_id == "cold") {
      cold_steps["cold"].push_back(event.step);
    }
  }
  // The restarted stream equals a fresh detector fed only the post-fault
  // bags (bag 4 was consumed by the failed rehydrate).
  std::vector<const Bag*> fed;
  for (std::size_t t = 5; t < 16; ++t) fed.push_back(&cold[t]);
  std::map<std::string, std::vector<StepResult>> expected;
  expected["cold"] = Replay(options, "cold", fed);
  ExpectIdenticalSeries(expected, cold_steps, "fresh after poisoned snapshot");
}

// ---------------------------------------------------------------------------
// Spill I/O fault points and on-disk corruption.

TEST(FaultMatrixTest, SpillWriteFaultKeepsStreamResident) {
  ScopedFault armed("spill.write:every-n:1");
  ASSERT_TRUE(armed.status().ok());

  StreamEngineOptions options = SmallEngine(1);
  options.spill_directory = MakeSpillDir();
  options.max_idle_submissions = 4;
  auto engine = StreamEngine::Create(options).MoveValueUnsafe();

  const BagSequence cold = KeyStream("cold", 12);
  for (std::size_t t = 0; t < 4; ++t) {
    ASSERT_TRUE(engine->Submit("cold", cold[t]).ok());
  }
  const Bag filler = KeyStream("busy", 1).front();
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(engine->Submit("busy", filler).ok());
  }
  engine->Flush();
  // Every spill attempt failed like a bad write: nothing left memory and
  // nothing was lost.
  EXPECT_GT(armed.fired(), 0u);
  EXPECT_EQ(engine->spilled_count(), 0u);
  EXPECT_EQ(engine->live_stream_count(), 2u);
  EXPECT_TRUE(ListFiles(options.spill_directory).empty());

  // The stream continues from its resident state: the full series equals an
  // uninterrupted replay, proving no state was dropped by the failed spills.
  for (std::size_t t = 4; t < 12; ++t) {
    ASSERT_TRUE(engine->Submit("cold", cold[t]).ok());
  }
  engine->Flush();
  std::map<std::string, std::vector<StepResult>> cold_steps;
  for (const EngineEvent& event : engine->DrainEvents()) {
    if (event.kind == EngineEvent::Kind::kStep && event.stream_id == "cold") {
      cold_steps["cold"].push_back(event.step);
    }
  }
  std::vector<const Bag*> fed;
  for (std::size_t t = 0; t < 12; ++t) fed.push_back(&cold[t]);
  std::map<std::string, std::vector<StepResult>> expected;
  expected["cold"] = Replay(options, "cold", fed);
  ExpectIdenticalSeries(expected, cold_steps, "resident after failed spill");
}

TEST(FaultMatrixTest, SpillReadFaultRestoresFromSnapshot) {
  ScopedFault armed("spill.read:nth:1");
  ASSERT_TRUE(armed.status().ok());

  StreamEngineOptions options = SmallEngine(1);
  options.spill_directory = MakeSpillDir();
  options.max_idle_submissions = 4;
  options.max_stream_faults = 2;
  options.snapshot_interval = 2;
  auto engine = StreamEngine::Create(options).MoveValueUnsafe();

  const BagSequence cold = KeyStream("cold", 16);
  for (std::size_t t = 0; t < 4; ++t) {
    ASSERT_TRUE(engine->Submit("cold", cold[t]).ok());
  }
  const Bag filler = KeyStream("busy", 1).front();
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(engine->Submit("busy", filler).ok());
  }
  engine->Flush();
  ASSERT_EQ(engine->spilled_count(), 1u);

  // The unreadable spill file costs the triggering bag; the rolling snapshot
  // (4 pushes — refreshed just before the spill) restores the rest.
  for (std::size_t t = 4; t < 16; ++t) {
    ASSERT_TRUE(engine->Submit("cold", cold[t]).ok());
  }
  engine->Flush();
  EXPECT_EQ(engine->stream_fault_count(), 1u);
  EXPECT_EQ(engine->restored_count(), 1u);
  // The dead spill file was deleted with the fault.
  EXPECT_TRUE(ListFiles(options.spill_directory).empty());

  std::map<std::string, std::vector<StepResult>> cold_steps;
  for (const EngineEvent& event : engine->DrainEvents()) {
    EXPECT_NE(event.kind, EngineEvent::Kind::kError) << event.error.ToString();
    if (event.kind == EngineEvent::Kind::kStep && event.stream_id == "cold") {
      cold_steps["cold"].push_back(event.step);
    }
  }
  std::vector<const Bag*> fed;
  for (std::size_t t = 0; t < 4; ++t) fed.push_back(&cold[t]);
  for (std::size_t t = 5; t < 16; ++t) fed.push_back(&cold[t]);
  std::map<std::string, std::vector<StepResult>> expected;
  expected["cold"] = Replay(options, "cold", fed);
  ExpectIdenticalSeries(expected, cold_steps, "snapshot after spill.read");
}

TEST(FaultMatrixTest, CorruptSpillFileQuarantinesWithoutBudget) {
  // Real on-disk corruption (no injector): with the historical
  // max_stream_faults = 0 a truncated spill file quarantines the stream on
  // its next bag — typed kError, other streams untouched.
  StreamEngineOptions options = SmallEngine(1);
  options.spill_directory = MakeSpillDir();
  options.max_idle_submissions = 4;
  auto engine = StreamEngine::Create(options).MoveValueUnsafe();

  const BagSequence cold = KeyStream("cold", 8);
  for (std::size_t t = 0; t < 4; ++t) {
    ASSERT_TRUE(engine->Submit("cold", cold[t]).ok());
  }
  const Bag filler = KeyStream("busy", 1).front();
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(engine->Submit("busy", filler).ok());
  }
  engine->Flush();
  ASSERT_EQ(engine->spilled_count(), 1u);

  const std::vector<std::string> files = ListFiles(options.spill_directory);
  ASSERT_EQ(files.size(), 1u);
  {
    std::ifstream in(files[0], std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    ASSERT_GT(bytes.size(), 8u);
    std::ofstream out(files[0], std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }

  for (std::size_t t = 4; t < 8; ++t) {
    ASSERT_TRUE(engine->Submit("cold", cold[t]).ok());
  }
  ASSERT_TRUE(engine->Submit("busy", filler).ok());
  engine->Flush();
  auto errors = engine->DrainErrors();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors.front().first, "cold");
  EXPECT_FALSE(errors.front().second.ok());
  EXPECT_EQ(engine->live_stream_count(), 1u);  // Only "busy" survives.
}

TEST(FaultMatrixTest, CorruptSpillFileIsContainedWithBudget) {
  // The same corruption with a fault budget: the stream restarts from
  // scratch instead of quarantining and keeps producing results.
  StreamEngineOptions options = SmallEngine(1);
  options.spill_directory = MakeSpillDir();
  options.max_idle_submissions = 4;
  options.max_stream_faults = 2;
  auto engine = StreamEngine::Create(options).MoveValueUnsafe();

  const BagSequence cold = KeyStream("cold", 16);
  for (std::size_t t = 0; t < 4; ++t) {
    ASSERT_TRUE(engine->Submit("cold", cold[t]).ok());
  }
  const Bag filler = KeyStream("busy", 1).front();
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(engine->Submit("busy", filler).ok());
  }
  engine->Flush();
  ASSERT_EQ(engine->spilled_count(), 1u);
  const std::vector<std::string> files = ListFiles(options.spill_directory);
  ASSERT_EQ(files.size(), 1u);
  {
    std::ofstream out(files[0], std::ios::binary | std::ios::trunc);
    out << "not a spill file";
  }

  for (std::size_t t = 4; t < 16; ++t) {
    ASSERT_TRUE(engine->Submit("cold", cold[t]).ok());
  }
  engine->Flush();
  EXPECT_EQ(engine->stream_fault_count(), 1u);

  std::map<std::string, std::vector<StepResult>> cold_steps;
  for (const EngineEvent& event : engine->DrainEvents()) {
    EXPECT_NE(event.kind, EngineEvent::Kind::kError) << event.error.ToString();
    if (event.kind == EngineEvent::Kind::kStep && event.stream_id == "cold") {
      cold_steps["cold"].push_back(event.step);
    }
  }
  std::vector<const Bag*> fed;  // No snapshots: from-scratch restart.
  for (std::size_t t = 5; t < 16; ++t) fed.push_back(&cold[t]);
  std::map<std::string, std::vector<StepResult>> expected;
  expected["cold"] = Replay(options, "cold", fed);
  ExpectIdenticalSeries(expected, cold_steps, "contained corrupt spill");
}

// ---------------------------------------------------------------------------
// Ingest-boundary drops: arena.alloc faults and non-finite bags.

TEST(FaultMatrixTest, ArenaAllocFaultDropsOnlyTaggedSubmission) {
  ScopedFault armed("arena.alloc:nth:5");
  ASSERT_TRUE(armed.status().ok());
  auto engine = StreamEngine::Create(SmallEngine(1)).MoveValueUnsafe();
  const BagSequence bags = KeyStream("k", 12);
  for (const Bag& bag : bags) {
    ASSERT_TRUE(engine->Submit("k", bag).ok());
  }
  engine->Flush();
  EXPECT_EQ(armed.fired(), 1u);
  EXPECT_EQ(engine->dropped_count(), 1u);

  std::size_t fault_events = 0;
  std::map<std::string, std::vector<StepResult>> steps;
  for (const EngineEvent& event : engine->DrainEvents()) {
    if (event.kind == EngineEvent::Kind::kStreamFault) {
      ++fault_events;
      EXPECT_EQ(event.sequence, 5u);
      EXPECT_NE(event.error.message().find("fault-injected: arena.alloc"),
                std::string::npos);
    } else if (event.kind == EngineEvent::Kind::kStep) {
      steps[event.stream_id].push_back(event.step);
    }
  }
  EXPECT_EQ(fault_events, 1u);

  // The stream's detector never saw the 5th bag; everything else scored.
  std::vector<const Bag*> fed;
  for (std::size_t t = 0; t < bags.size(); ++t) {
    if (t != 4) fed.push_back(&bags[t]);
  }
  std::map<std::string, std::vector<StepResult>> expected;
  expected["k"] = Replay(SmallEngine(1), "k", fed);
  ExpectIdenticalSeries(expected, steps, "arena.alloc drop");
}

TEST(FaultMatrixTest, NonFiniteBagIsDroppedNotQuarantined) {
  // Default options (no budget): a poisoned bag is dropped per bag with a
  // kStreamFault naming the offending point; the stream itself continues.
  auto engine = StreamEngine::Create(SmallEngine(1)).MoveValueUnsafe();
  const BagSequence bags = KeyStream("k", 12);
  for (std::size_t t = 0; t < bags.size(); ++t) {
    if (t == 3) {
      Bag poisoned = bags[t];
      poisoned[0][1] = std::nan("");
      ASSERT_TRUE(engine->Submit("k", poisoned).ok());
      continue;
    }
    ASSERT_TRUE(engine->Submit("k", bags[t]).ok());
  }
  engine->Flush();
  EXPECT_EQ(engine->dropped_count(), 1u);
  EXPECT_EQ(engine->stream_fault_count(), 0u);  // No budget charged.

  std::size_t fault_events = 0;
  std::map<std::string, std::vector<StepResult>> steps;
  for (const EngineEvent& event : engine->DrainEvents()) {
    if (event.kind == EngineEvent::Kind::kStreamFault) {
      ++fault_events;
      EXPECT_EQ(event.error.code(), StatusCode::kInvalidArgument);
      EXPECT_NE(event.error.message().find("non-finite"), std::string::npos);
    } else {
      EXPECT_EQ(event.kind, EngineEvent::Kind::kStep);
      steps[event.stream_id].push_back(event.step);
    }
  }
  EXPECT_EQ(fault_events, 1u);

  std::vector<const Bag*> fed;
  for (std::size_t t = 0; t < bags.size(); ++t) {
    if (t != 3) fed.push_back(&bags[t]);
  }
  std::map<std::string, std::vector<StepResult>> expected;
  expected["k"] = Replay(SmallEngine(1), "k", fed);
  ExpectIdenticalSeries(expected, steps, "non-finite drop");
}

// ---------------------------------------------------------------------------
// Backoff windows.

TEST(FaultMatrixTest, BackoffWindowDropsBagsDeterministically) {
  StreamEngineOptions options = SmallEngine(1);
  options.max_stream_faults = 3;
  options.fault_backoff_submissions = 6;
  auto engine = StreamEngine::Create(options).MoveValueUnsafe();
  const BagSequence a = KeyStream("a", 16);
  const BagSequence b = KeyStream("b", 16);
  {
    // Strict a,b interleave. nth counts per-stream push ordinals, so BOTH
    // streams fault on their own 6th push: "a" at global sequence 11
    // (cooldown through 11 + 6 = 17, dropping its bags at sequences 13, 15,
    // 17), "b" at sequence 12 (cooldown through 18, dropping 14, 16, 18).
    ScopedFault armed("detector.push:nth:6");
    ASSERT_TRUE(armed.status().ok());
    for (std::size_t t = 0; t < 6; ++t) {
      ASSERT_TRUE(engine->Submit("a", a[t]).ok());
      ASSERT_TRUE(engine->Submit("b", b[t]).ok());
    }
    engine->Flush();
    EXPECT_EQ(armed.fired(), 2u);
  }
  for (std::size_t t = 6; t < 16; ++t) {
    ASSERT_TRUE(engine->Submit("a", a[t]).ok());
    ASSERT_TRUE(engine->Submit("b", b[t]).ok());
  }
  engine->Flush();
  // Per stream: 1 faulted bag + 3 cooldown drops.
  EXPECT_EQ(engine->dropped_count(), 8u);
  EXPECT_EQ(engine->stream_fault_count(), 2u);

  std::map<std::string, std::vector<StepResult>> steps;
  for (const EngineEvent& event : engine->DrainEvents()) {
    EXPECT_NE(event.kind, EngineEvent::Kind::kError);
    if (event.kind == EngineEvent::Kind::kStep) {
      steps[event.stream_id].push_back(event.step);
    }
  }
  // Each stream restarts from scratch on its first bag past its own window
  // (t = 9 for both) — the windows are sequence arithmetic, not wall-clock,
  // so the drop sets are exactly predictable.
  std::vector<const Bag*> a_fed;
  for (std::size_t t = 9; t < 16; ++t) a_fed.push_back(&a[t]);
  std::vector<const Bag*> b_fed;
  for (std::size_t t = 9; t < 16; ++t) b_fed.push_back(&b[t]);
  std::map<std::string, std::vector<StepResult>> expected;
  expected["a"] = Replay(options, "a", a_fed);
  expected["b"] = Replay(options, "b", b_fed);
  ExpectIdenticalSeries(expected, steps, "backoff window");
}

// ---------------------------------------------------------------------------
// Spill-file GC.

TEST(FaultMatrixTest, SpillGcReclaimsKeysThatNeverReturn) {
  StreamEngineOptions options = SmallEngine(1);
  options.spill_directory = MakeSpillDir();
  options.max_idle_submissions = 4;
  options.spill_gc_submissions = 100;
  auto engine = StreamEngine::Create(options).MoveValueUnsafe();

  const BagSequence cold = KeyStream("cold", 12);
  for (std::size_t t = 0; t < 4; ++t) {
    ASSERT_TRUE(engine->Submit("cold", cold[t]).ok());
  }
  // First sweep (~512 tasks) spills the idle key; the second finds it past
  // the GC horizon and deletes the file.
  const Bag filler = KeyStream("busy", 1).front();
  for (int i = 0; i < 1200; ++i) {
    ASSERT_TRUE(engine->Submit("busy", filler).ok());
  }
  engine->Flush();
  EXPECT_EQ(engine->spilled_count(), 1u);
  EXPECT_EQ(engine->spill_gc_count(), 1u);
  EXPECT_EQ(engine->evicted_count(), 1u);
  EXPECT_TRUE(ListFiles(options.spill_directory).empty());
  bool saw_gc_eviction = false;
  for (const EngineEvent& event : engine->DrainEvents()) {
    if (event.kind == EngineEvent::Kind::kEviction &&
        event.stream_id == "cold") {
      saw_gc_eviction = true;
    }
  }
  EXPECT_TRUE(saw_gc_eviction);

  // A returning key restarts from scratch — the state is gone, not stale.
  for (std::size_t t = 4; t < 12; ++t) {
    ASSERT_TRUE(engine->Submit("cold", cold[t]).ok());
  }
  engine->Flush();
  std::map<std::string, std::vector<StepResult>> cold_steps;
  for (const EngineEvent& event : engine->DrainEvents()) {
    if (event.kind == EngineEvent::Kind::kStep && event.stream_id == "cold") {
      cold_steps["cold"].push_back(event.step);
    }
  }
  std::vector<const Bag*> fed;
  for (std::size_t t = 4; t < 12; ++t) fed.push_back(&cold[t]);
  std::map<std::string, std::vector<StepResult>> expected;
  expected["cold"] = Replay(options, "cold", fed);
  ExpectIdenticalSeries(expected, cold_steps, "fresh after spill GC");
}

// ---------------------------------------------------------------------------
// Detector-level fault points: pool invariance and graceful EMD degradation.

TEST(FaultMatrixTest, EmdSolveFaultIsPoolInvariant) {
  // The emd.solve ordinal advances identically on the serial and pooled
  // prefill paths (the prefill's missing set equals the serial fold's miss
  // set), so the SAME push faults at every pool size, with every prior score
  // bitwise identical.
  const BagSequence bags = KeyStream("emd", 12);
  DetectorOptions options = SmallDetector();
  options.seed = 42;

  std::vector<double> baseline_scores;
  std::size_t baseline_fault_push = 0;
  bool first = true;
  for (std::size_t threads : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                              std::size_t{8}}) {
    ScopedFault armed("emd.solve:nth:23");
    ASSERT_TRUE(armed.status().ok());
    auto detector = BagStreamDetector::Create(options).MoveValueUnsafe();
    std::unique_ptr<ThreadPool> pool;
    if (threads > 0) {
      pool = std::make_unique<ThreadPool>(threads);
      detector->set_thread_pool(pool.get());
    }
    std::vector<double> scores;
    std::size_t fault_push = 0;
    for (std::size_t t = 0; t < bags.size(); ++t) {
      auto step = detector->Push(bags[t]);
      if (!step.ok()) {
        EXPECT_NE(step.status().message().find("fault-injected: emd.solve"),
                  std::string::npos)
            << step.status().ToString();
        fault_push = t + 1;
        break;
      }
      if (step.ValueOrDie().has_value()) {
        scores.push_back(step.ValueOrDie()->score);
      }
    }
    ASSERT_GT(fault_push, 0u) << threads << " threads";
    if (first) {
      baseline_scores = scores;
      baseline_fault_push = fault_push;
      first = false;
      continue;
    }
    EXPECT_EQ(fault_push, baseline_fault_push) << threads << " threads";
    EXPECT_EQ(scores, baseline_scores) << threads << " threads";
  }
}

TEST(FaultMatrixTest, SinkhornFaultFallsBackToExactWhenEnabled) {
  const BagSequence bags = KeyStream("sk", 12);

  // Reference: the exact solver end to end.
  DetectorOptions exact = SmallDetector();
  exact.seed = 7;
  std::vector<double> exact_scores;
  {
    auto detector = BagStreamDetector::Create(exact).MoveValueUnsafe();
    for (const Bag& bag : bags) {
      auto step = detector->Push(bag);
      ASSERT_TRUE(step.ok());
      if (step.ValueOrDie().has_value()) {
        exact_scores.push_back(step.ValueOrDie()->score);
      }
    }
  }

  DetectorOptions sinkhorn = exact;
  sinkhorn.emd.kind = EmdSolverKind::kSinkhorn;

  {
    // Every Sinkhorn iteration faults; with the fallback the detector scores
    // every pair through the exact solver instead — bitwise the exact run.
    ScopedFault armed("sinkhorn.iterate:every-n:1");
    ASSERT_TRUE(armed.status().ok());
    DetectorOptions with_fallback = sinkhorn;
    with_fallback.emd.fallback_exact = true;
    auto detector =
        BagStreamDetector::Create(with_fallback).MoveValueUnsafe();
    std::vector<double> scores;
    for (const Bag& bag : bags) {
      auto step = detector->Push(bag);
      ASSERT_TRUE(step.ok()) << step.status().ToString();
      if (step.ValueOrDie().has_value()) {
        scores.push_back(step.ValueOrDie()->score);
      }
    }
    EXPECT_EQ(scores, exact_scores);
    EXPECT_GT(detector->emd_solver().fallback_count(), 0u);
    EXPECT_GT(armed.fired(), 0u);
  }
  {
    // Without the fallback the same drill surfaces as a typed push error.
    ScopedFault armed("sinkhorn.iterate:every-n:1");
    ASSERT_TRUE(armed.status().ok());
    auto detector = BagStreamDetector::Create(sinkhorn).MoveValueUnsafe();
    Status failure;
    for (const Bag& bag : bags) {
      auto step = detector->Push(bag);
      if (!step.ok()) {
        failure = step.status();
        break;
      }
    }
    EXPECT_FALSE(failure.ok());
    EXPECT_NE(failure.message().find("fault-injected: sinkhorn.iterate"),
              std::string::npos)
        << failure.ToString();
  }
}

// ---------------------------------------------------------------------------
// Option validation and spec round-trips for the new keys.

TEST(FaultMatrixTest, ValidationRejectsIncoherentRecoveryOptions) {
  StreamEngineOptions backoff_only = SmallEngine(1);
  backoff_only.fault_backoff_submissions = 4;
  EXPECT_FALSE(ValidateStreamEngineOptions(backoff_only).ok());

  StreamEngineOptions snapshot_only = SmallEngine(1);
  snapshot_only.snapshot_interval = 4;
  EXPECT_FALSE(ValidateStreamEngineOptions(snapshot_only).ok());

  StreamEngineOptions gc_without_dir = SmallEngine(1);
  gc_without_dir.spill_gc_submissions = 10;
  EXPECT_FALSE(ValidateStreamEngineOptions(gc_without_dir).ok());

  StreamEngineOptions bad_fault = SmallEngine(1);
  bad_fault.fault = "detector.push:sometimes:1";
  EXPECT_FALSE(ValidateStreamEngineOptions(bad_fault).ok());

  StreamEngineOptions coherent = SmallEngine(1);
  coherent.max_stream_faults = 2;
  coherent.fault_backoff_submissions = 4;
  coherent.snapshot_interval = 4;
  coherent.fault = "detector.push:nth:3";
  EXPECT_TRUE(ValidateStreamEngineOptions(coherent).ok());
  FaultInjector::Global().Disarm();  // Validation must not arm...
  EXPECT_FALSE(FaultInjector::Global().armed());
}

TEST(FaultMatrixTest, EngineSpecRoundTripsFaultContainmentKeys) {
  const std::string dir = MakeSpillDir();
  api::EngineSpec spec;
  spec.NumShards(2)
      .Seed(9)
      .SpillDirectory(dir)
      .SpillGc(200)
      .FaultBudget(3)
      .FaultBackoff(16)
      .SnapshotEvery(8)
      .Fault("spill.read:nth:2");
  const std::string text = spec.ToKeyValues();
  EXPECT_NE(text.find("spill_gc=200"), std::string::npos) << text;
  EXPECT_NE(text.find("fault_budget=3"), std::string::npos) << text;
  EXPECT_NE(text.find("fault_backoff=16"), std::string::npos) << text;
  EXPECT_NE(text.find("snapshot_every=8"), std::string::npos) << text;
  EXPECT_NE(text.find("fault=spill.read:nth:2"), std::string::npos) << text;
  Result<api::EngineSpec> reparsed = api::EngineSpec::FromKeyValues(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->ToKeyValues(), text);
  Result<StreamEngineOptions> built = reparsed->Build();
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_EQ(built->spill_gc_submissions, 200u);
  EXPECT_EQ(built->max_stream_faults, 3u);
  EXPECT_EQ(built->fault_backoff_submissions, 16u);
  EXPECT_EQ(built->snapshot_interval, 8u);
  EXPECT_EQ(built->fault, "spill.read:nth:2");
  FaultInjector::Global().Disarm();  // Build() must not arm; Create() does.

  // Defaults emit none of the new keys: canonical strings are unchanged for
  // legacy configurations.
  const std::string base = api::EngineSpec().ToKeyValues();
  EXPECT_EQ(base.find("fault"), std::string::npos) << base;
  EXPECT_EQ(base.find("spill_gc"), std::string::npos) << base;
  EXPECT_EQ(base.find("snapshot_every"), std::string::npos) << base;

  // A malformed fault spec survives parsing (keys are stored verbatim) but
  // fails at Build(), before any work starts — never at the first drill.
  Result<api::EngineSpec> bogus =
      api::EngineSpec::FromKeyValues("shards=1,fault=bogus");
  ASSERT_TRUE(bogus.ok()) << bogus.status().ToString();
  EXPECT_FALSE(bogus->Build().ok());
}

TEST(FaultMatrixTest, DetectorSpecRoundTripsEmdFallback) {
  api::DetectorSpec spec;
  spec.EmdFallbackExact(true);
  const std::string text = spec.ToKeyValues();
  EXPECT_NE(text.find("emd-fallback=exact"), std::string::npos) << text;
  Result<api::DetectorSpec> reparsed = api::DetectorSpec::FromKeyValues(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->ToKeyValues(), text);

  Result<api::DetectorSpec> off =
      api::DetectorSpec::FromKeyValues("emd-fallback=none");
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(off->ToKeyValues().find("emd-fallback"), std::string::npos);
  EXPECT_FALSE(api::DetectorSpec::FromKeyValues("emd-fallback=maybe").ok());

  // The default string never carries the key (legacy canonical form).
  EXPECT_EQ(api::DetectorSpec().ToKeyValues().find("emd-fallback"),
            std::string::npos);
}

}  // namespace
}  // namespace bagcpd
