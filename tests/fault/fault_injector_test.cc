// FaultInjector contract: spec parsing (and its failure modes), the three
// firing modes' exact semantics, determinism of the (scope, count) decision,
// counter bookkeeping, and the disarmed fast path. Tests within one binary
// share the process-wide injector, so every armed test uses ScopedFault.

#include "bagcpd/fault/fault_injector.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace bagcpd {
namespace fault {
namespace {

TEST(FaultInjectorTest, ParsesEveryPointName) {
  const char* const names[] = {"emd.solve",  "sinkhorn.iterate", "arena.alloc",
                               "spill.write", "spill.read",      "ckpt.import",
                               "detector.push"};
  for (std::size_t i = 0; i < kFaultPointCount; ++i) {
    Result<FaultPoint> point = ParseFaultPoint(names[i]);
    ASSERT_TRUE(point.ok()) << names[i];
    EXPECT_EQ(static_cast<std::size_t>(point.ValueOrDie()), i);
    EXPECT_STREQ(FaultPointName(point.ValueOrDie()), names[i]);
  }
  EXPECT_FALSE(ParseFaultPoint("emd_solve").ok());
  EXPECT_FALSE(ParseFaultPoint("").ok());
}

TEST(FaultInjectorTest, ValidateSpecAcceptsAndRejectsWithoutArming) {
  FaultInjector::Global().Disarm();
  EXPECT_TRUE(FaultInjector::ValidateSpec("emd.solve:nth:3").ok());
  EXPECT_TRUE(FaultInjector::ValidateSpec("spill.read:every-n:10").ok());
  EXPECT_TRUE(FaultInjector::ValidateSpec("detector.push:seeded-p:0.5").ok());
  EXPECT_TRUE(
      FaultInjector::ValidateSpec("detector.push:seeded-p:0.5:42").ok());
  // Malformed specs: wrong shape, unknown point/mode, bad arguments.
  EXPECT_FALSE(FaultInjector::ValidateSpec("").ok());
  EXPECT_FALSE(FaultInjector::ValidateSpec("emd.solve").ok());
  EXPECT_FALSE(FaultInjector::ValidateSpec("emd.solve:nth").ok());
  EXPECT_FALSE(FaultInjector::ValidateSpec("no.such.point:nth:1").ok());
  EXPECT_FALSE(FaultInjector::ValidateSpec("emd.solve:sometimes:1").ok());
  EXPECT_FALSE(FaultInjector::ValidateSpec("emd.solve:nth:0").ok());
  EXPECT_FALSE(FaultInjector::ValidateSpec("emd.solve:nth:-1").ok());
  EXPECT_FALSE(FaultInjector::ValidateSpec("emd.solve:nth:1:2").ok());
  EXPECT_FALSE(FaultInjector::ValidateSpec("emd.solve:every-n:x").ok());
  EXPECT_FALSE(FaultInjector::ValidateSpec("emd.solve:seeded-p:1.5").ok());
  EXPECT_FALSE(FaultInjector::ValidateSpec("emd.solve:seeded-p:nan").ok());
  EXPECT_FALSE(
      FaultInjector::ValidateSpec("emd.solve:seeded-p:0.5:1:2").ok());
  // Validation never arms.
  EXPECT_FALSE(FaultInjector::Global().armed());
}

TEST(FaultInjectorTest, MalformedArmLeavesPreviousSpecArmed) {
  ScopedFault armed("emd.solve:nth:5");
  ASSERT_TRUE(armed.status().ok());
  EXPECT_FALSE(FaultInjector::Global().ArmFromSpec("bogus").ok());
  EXPECT_TRUE(FaultInjector::Global().armed());
  EXPECT_EQ(FaultInjector::Global().armed_spec(), "emd.solve:nth:5");
}

TEST(FaultInjectorTest, DisarmedNeverFires) {
  FaultInjector::Global().Disarm();
  FaultInjector::Global().ResetCounters();
  for (std::uint64_t count = 1; count <= 100; ++count) {
    EXPECT_FALSE(FaultFires(FaultPoint::kEmdSolve, 7, count));
  }
  EXPECT_EQ(FaultInjector::Global().fired_count(), 0u);
}

TEST(FaultInjectorTest, NthFiresExactlyOnThatOccurrence) {
  ScopedFault armed("detector.push:nth:4");
  ASSERT_TRUE(armed.status().ok());
  for (std::uint64_t count = 1; count <= 10; ++count) {
    EXPECT_EQ(FaultFires(FaultPoint::kDetectorPush, 1, count), count == 4);
  }
  // The armed point does not leak onto other points.
  EXPECT_FALSE(FaultFires(FaultPoint::kEmdSolve, 1, 4));
  EXPECT_EQ(armed.fired(), 1u);
  EXPECT_EQ(FaultInjector::Global().fired_count(FaultPoint::kDetectorPush),
            1u);
  EXPECT_EQ(FaultInjector::Global().fired_count(FaultPoint::kEmdSolve), 0u);
}

TEST(FaultInjectorTest, EveryNFiresOnMultiples) {
  ScopedFault armed("spill.write:every-n:3");
  ASSERT_TRUE(armed.status().ok());
  std::vector<std::uint64_t> fired;
  for (std::uint64_t count = 1; count <= 9; ++count) {
    if (FaultFires(FaultPoint::kSpillWrite, 0, count)) fired.push_back(count);
  }
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{3, 6, 9}));
}

TEST(FaultInjectorTest, SeededPIsDeterministicPerScopeCountPair) {
  std::vector<bool> first;
  for (int run = 0; run < 2; ++run) {
    ScopedFault armed("emd.solve:seeded-p:0.3:11");
    ASSERT_TRUE(armed.status().ok());
    std::vector<bool> outcomes;
    for (std::uint64_t scope = 0; scope < 4; ++scope) {
      for (std::uint64_t count = 1; count <= 50; ++count) {
        outcomes.push_back(FaultFires(FaultPoint::kEmdSolve, scope, count));
      }
    }
    if (run == 0) {
      first = outcomes;
      // P = 0.3 over 200 draws: some fire, some do not.
      EXPECT_GT(armed.fired(), 0u);
      EXPECT_LT(armed.fired(), 200u);
    } else {
      EXPECT_EQ(outcomes, first);  // Bitwise-reproducible decisions.
    }
  }
}

TEST(FaultInjectorTest, SeededPZeroNeverFiresAndOneAlwaysFires) {
  {
    ScopedFault never("ckpt.import:seeded-p:0");
    ASSERT_TRUE(never.status().ok());
    for (std::uint64_t count = 1; count <= 64; ++count) {
      EXPECT_FALSE(FaultFires(FaultPoint::kCkptImport, count, count));
    }
  }
  {
    ScopedFault always("ckpt.import:seeded-p:1");
    ASSERT_TRUE(always.status().ok());
    for (std::uint64_t count = 1; count <= 64; ++count) {
      EXPECT_TRUE(FaultFires(FaultPoint::kCkptImport, count, count));
    }
  }
}

TEST(FaultInjectorTest, SeededPSeedChangesTheDrawStream) {
  std::vector<bool> a;
  {
    ScopedFault armed("arena.alloc:seeded-p:0.5:1");
    for (std::uint64_t count = 1; count <= 100; ++count) {
      a.push_back(FaultFires(FaultPoint::kArenaAlloc, 9, count));
    }
  }
  std::vector<bool> b;
  {
    ScopedFault armed("arena.alloc:seeded-p:0.5:2");
    for (std::uint64_t count = 1; count <= 100; ++count) {
      b.push_back(FaultFires(FaultPoint::kArenaAlloc, 9, count));
    }
  }
  EXPECT_NE(a, b);
}

TEST(FaultInjectorTest, ScopedFaultDisarmsOnDestruction) {
  {
    ScopedFault armed("emd.solve:every-n:1");
    ASSERT_TRUE(armed.status().ok());
    EXPECT_TRUE(FaultInjector::Global().armed());
  }
  EXPECT_FALSE(FaultInjector::Global().armed());
  EXPECT_TRUE(FaultInjector::Global().armed_spec().empty());
}

TEST(FaultInjectorTest, InjectedErrorIsTaggedInternal) {
  const Status error = InjectedFaultError(FaultPoint::kSpillRead);
  EXPECT_EQ(error.code(), StatusCode::kInternal);
  EXPECT_NE(error.message().find("fault-injected: spill.read"),
            std::string::npos);
}

}  // namespace
}  // namespace fault
}  // namespace bagcpd
