#include "bagcpd/common/point.h"

#include <cmath>

#include <gtest/gtest.h>

namespace bagcpd {
namespace {

TEST(PointTest, Distances) {
  Point a = {0.0, 0.0};
  Point b = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 25.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(ManhattanDistance(a, b), 7.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, a), 0.0);
}

TEST(PointTest, BagMean) {
  Bag bag = {{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  Point mean = BagMean(bag);
  EXPECT_DOUBLE_EQ(mean[0], 3.0);
  EXPECT_DOUBLE_EQ(mean[1], 4.0);
}

TEST(PointTest, ValidateBagAcceptsConsistent) {
  Bag bag = {{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_TRUE(ValidateBag(bag).ok());
  EXPECT_TRUE(ValidateBag(bag, 2).ok());
}

TEST(PointTest, ValidateBagRejectsEmpty) {
  EXPECT_FALSE(ValidateBag({}).ok());
}

TEST(PointTest, ValidateBagRejectsRagged) {
  Bag bag = {{1.0, 2.0}, {3.0}};
  EXPECT_FALSE(ValidateBag(bag).ok());
}

TEST(PointTest, ValidateBagRejectsWrongDim) {
  Bag bag = {{1.0, 2.0}};
  EXPECT_FALSE(ValidateBag(bag, 3).ok());
}

TEST(PointTest, ValidateBagRejectsZeroDim) {
  Bag bag = {{}};
  EXPECT_FALSE(ValidateBag(bag).ok());
}

TEST(PointTest, ValidateBagSequence) {
  BagSequence good = {{{1.0}, {2.0}}, {{3.0}}};
  EXPECT_TRUE(ValidateBagSequence(good).ok());
  BagSequence mixed_dim = {{{1.0}}, {{1.0, 2.0}}};
  EXPECT_FALSE(ValidateBagSequence(mixed_dim).ok());
  BagSequence with_empty = {{{1.0}}, {}};
  EXPECT_FALSE(ValidateBagSequence(with_empty).ok());
  EXPECT_FALSE(ValidateBagSequence({}).ok());
}

}  // namespace
}  // namespace bagcpd
