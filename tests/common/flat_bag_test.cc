#include "bagcpd/common/flat_bag.h"

#include <vector>

#include <gtest/gtest.h>

namespace bagcpd {
namespace {

TEST(PointViewTest, ImplicitFromPointAndAccessors) {
  const Point p = {1.0, 2.0, 3.0};
  const PointView v = p;
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v.data(), p.data());  // Zero-copy.
  EXPECT_DOUBLE_EQ(v[1], 2.0);
  EXPECT_EQ(v.ToPoint(), p);
}

TEST(PointViewTest, KernelsAcceptViewsAndPoints) {
  const Point a = {0.0, 0.0};
  const Point b = {3.0, 4.0};
  const double flat[] = {3.0, 4.0};
  const PointView bv(flat, 2);
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 25.0);
  EXPECT_DOUBLE_EQ(SquaredDistance(a, bv), 25.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, bv), 5.0);
  EXPECT_DOUBLE_EQ(ManhattanDistance(a, bv), 7.0);
}

TEST(BagViewTest, RowsAndIteration) {
  const std::vector<double> data = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  const BagView view(data.data(), 3, 2);
  EXPECT_EQ(view.size(), 3u);
  EXPECT_EQ(view.dim(), 2u);
  EXPECT_DOUBLE_EQ(view[1][0], 3.0);
  EXPECT_DOUBLE_EQ(view[2][1], 6.0);
  std::size_t rows = 0;
  for (const PointView row : view) {
    EXPECT_EQ(row.size(), 2u);
    ++rows;
  }
  EXPECT_EQ(rows, 3u);
}

TEST(FlatBagTest, FromBagToBagRoundTripIsIdentity) {
  const Bag bag = {{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  Result<FlatBag> flat = FlatBag::FromBag(bag);
  ASSERT_TRUE(flat.ok());
  EXPECT_EQ(flat->size(), 3u);
  EXPECT_EQ(flat->dim(), 2u);
  EXPECT_EQ(flat->ToBag(), bag);
  // The storage really is one contiguous row-major buffer.
  const std::vector<double> expected = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  EXPECT_EQ(flat->storage(), expected);
}

TEST(FlatBagTest, FromBagValidates) {
  EXPECT_FALSE(FlatBag::FromBag(Bag{}).ok());               // Empty.
  EXPECT_FALSE(FlatBag::FromBag(Bag{{}}).ok());             // Zero-dim.
  EXPECT_FALSE(FlatBag::FromBag(Bag{{1.0, 2.0}, {3.0}}).ok());  // Ragged.
}

TEST(FlatBagTest, AppendChecksDimension) {
  FlatBag bag;
  ASSERT_TRUE(bag.Append(Point{1.0, 2.0}).ok());  // Fixes dim = 2.
  ASSERT_TRUE(bag.Append(Point{3.0, 4.0}).ok());
  EXPECT_FALSE(bag.Append(Point{5.0}).ok());      // Mismatch.
  EXPECT_FALSE(bag.Append(Point{}).ok());         // Zero-dim.
  EXPECT_EQ(bag.size(), 2u);
  EXPECT_DOUBLE_EQ(bag[1][1], 4.0);
}

TEST(FlatBagTest, AppendOwnRowSurvivesReallocation) {
  FlatBag bag(2);
  ASSERT_TRUE(bag.Append(Point{1.0, 2.0}).ok());
  // Repeatedly append the bag's own first row; each insert may reallocate.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(bag.Append(bag[0]).ok());
  }
  for (std::size_t i = 0; i < bag.size(); ++i) {
    EXPECT_DOUBLE_EQ(bag[i][0], 1.0);
    EXPECT_DOUBLE_EQ(bag[i][1], 2.0);
  }
}

TEST(FlatBagTest, FromFlatChecksMultiple) {
  EXPECT_TRUE(FlatBag::FromFlat({1.0, 2.0, 3.0, 4.0}, 2).ok());
  EXPECT_FALSE(FlatBag::FromFlat({1.0, 2.0, 3.0}, 2).ok());
  EXPECT_FALSE(FlatBag::FromFlat({1.0}, 0).ok());
  EXPECT_TRUE(FlatBag::FromFlat({}, 0).ok());  // Empty is representable.
}

TEST(FlatBagTest, ImplicitBagViewConversion) {
  FlatBag bag = FlatBag::FromBag(Bag{{1.0}, {2.0}, {6.0}}).ValueOrDie();
  EXPECT_DOUBLE_EQ(BagMean(bag)[0], 3.0);  // Picks the BagView overload.
  const BagView view = bag;
  EXPECT_EQ(view.data(), bag.data());
}

TEST(FlatBagTest, BagMeanAgreesBitwiseAcrossRepresentations) {
  const Bag bag = {{1.5, -2.0}, {0.25, 8.0}, {-3.75, 1.0}, {2.5, 0.125}};
  FlatBag flat = FlatBag::FromBag(bag).ValueOrDie();
  const Point nested_mean = BagMean(bag);
  const Point flat_mean = BagMean(flat.view());
  ASSERT_EQ(nested_mean.size(), flat_mean.size());
  for (std::size_t j = 0; j < nested_mean.size(); ++j) {
    EXPECT_EQ(nested_mean[j], flat_mean[j]);  // Bitwise.
  }
}

TEST(FlatBagTest, ValidateBagViewMirrorsValidateBag) {
  FlatBag bag = FlatBag::FromBag(Bag{{1.0, 2.0}}).ValueOrDie();
  EXPECT_TRUE(ValidateBagView(bag.view()).ok());
  EXPECT_TRUE(ValidateBagView(bag.view(), 2).ok());
  EXPECT_FALSE(ValidateBagView(bag.view(), 3).ok());
  EXPECT_FALSE(ValidateBagView(BagView()).ok());
}

TEST(FlattenSequenceTest, ConvertsAllOrReportsOffendingTime) {
  const BagSequence good = {{{1.0}, {2.0}}, {{3.0}}};
  Result<FlatBagSequence> flat = FlattenSequence(good);
  ASSERT_TRUE(flat.ok());
  ASSERT_EQ(flat->size(), 2u);
  EXPECT_EQ((*flat)[0].size(), 2u);
  EXPECT_EQ((*flat)[1].size(), 1u);

  const BagSequence bad = {{{1.0}}, {{1.0, 2.0}, {3.0}}};
  Result<FlatBagSequence> failed = FlattenSequence(bad);
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.status().message().find("time 1"), std::string::npos);
}

}  // namespace
}  // namespace bagcpd
