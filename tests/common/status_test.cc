#include "bagcpd/common/status.h"

#include <gtest/gtest.h>

#include "bagcpd/common/result.h"

namespace bagcpd {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryMethodsCarryCodeAndMessage) {
  EXPECT_EQ(Status::Invalid("bad").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("oor").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotImplemented("ni").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Internal("int").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("io").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Unavailable("full").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::Invalid("bad").message(), "bad");
  EXPECT_FALSE(Status::Invalid("bad").ok());
}

TEST(StatusTest, IsUnavailableDistinguishesTransientFullness) {
  EXPECT_TRUE(Status::Unavailable("queue full").IsUnavailable());
  EXPECT_FALSE(Status::Invalid("bad").IsUnavailable());
  EXPECT_FALSE(Status::OK().IsUnavailable());
  EXPECT_EQ(Status::Unavailable("queue full").ToString(),
            "Unavailable: queue full");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::Invalid("no good").ToString(), "Invalid: no good");
  EXPECT_EQ(Status::IoError("disk").ToString(), "IOError: disk");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::Invalid("x"), Status::Invalid("x"));
  EXPECT_NE(Status::Invalid("x"), Status::Invalid("y"));
  EXPECT_NE(Status::Invalid("x"), Status::Internal("x"));
  EXPECT_NE(Status::Invalid("x"), Status::OK());
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    BAGCPD_RETURN_NOT_OK(Status::Invalid("inner"));
    return Status::OK();
  };
  EXPECT_EQ(fails().message(), "inner");

  auto passes = []() -> Status {
    BAGCPD_RETURN_NOT_OK(Status::OK());
    return Status::Internal("reached end");
  };
  EXPECT_EQ(passes().code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::Invalid("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().message(), "nope");
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<int> r(7);
  EXPECT_EQ(r.ValueOr(-1), 7);
}

TEST(ResultTest, MoveValueUnsafeTransfersOwnership) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = r.MoveValueUnsafe();
  EXPECT_EQ(v.size(), 3u);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner_fail = []() -> Result<int> { return Status::Invalid("deep"); };
  auto outer = [&]() -> Result<int> {
    BAGCPD_ASSIGN_OR_RETURN(int v, inner_fail());
    return v + 1;
  };
  EXPECT_FALSE(outer().ok());
  EXPECT_EQ(outer().status().message(), "deep");

  auto inner_ok = []() -> Result<int> { return 10; };
  auto outer_ok = [&]() -> Result<int> {
    BAGCPD_ASSIGN_OR_RETURN(int v, inner_ok());
    return v + 1;
  };
  EXPECT_EQ(outer_ok().ValueOrDie(), 11);
}

TEST(ResultTest, ArrowOperatorAccessesMembers) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r->size(), 5u);
}

}  // namespace
}  // namespace bagcpd
