#include "bagcpd/common/stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace bagcpd {
namespace {

TEST(StatsTest, MeanVarianceStdDev) {
  std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(xs), 5.0);
  EXPECT_NEAR(Variance(xs), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(StdDev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(StatsTest, VarianceOfSingletonIsZero) {
  EXPECT_DOUBLE_EQ(Variance({3.0}), 0.0);
}

TEST(StatsTest, CovarianceAndCorrelation) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  std::vector<double> ys = {2, 4, 6, 8, 10};
  EXPECT_NEAR(Correlation(xs, ys), 1.0, 1e-12);
  std::vector<double> zs = {10, 8, 6, 4, 2};
  EXPECT_NEAR(Correlation(xs, zs), -1.0, 1e-12);
  std::vector<double> cs = {5, 5, 5, 5, 5};
  EXPECT_DOUBLE_EQ(Correlation(xs, cs), 0.0);
}

TEST(StatsTest, QuantileMatchesRType7) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0).ValueOrDie(), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0).ValueOrDie(), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5).ValueOrDie(), 2.5);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.25).ValueOrDie(), 1.75);
}

TEST(StatsTest, QuantileUnsortedInput) {
  std::vector<double> xs = {9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5).ValueOrDie(), 5.0);
}

TEST(StatsTest, QuantileErrors) {
  EXPECT_FALSE(Quantile({}, 0.5).ok());
  EXPECT_FALSE(Quantile({1.0}, -0.1).ok());
  EXPECT_FALSE(Quantile({1.0}, 1.1).ok());
  EXPECT_DOUBLE_EQ(Quantile({7.0}, 0.9).ValueOrDie(), 7.0);
}

TEST(StatsTest, CentralInterval) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(static_cast<double>(i));
  Result<Interval> ci = CentralInterval(xs, 0.05);
  ASSERT_TRUE(ci.ok());
  EXPECT_NEAR(ci->lo, 3.475, 1e-9);
  EXPECT_NEAR(ci->up, 97.525, 1e-9);
  EXPECT_LT(ci->lo, ci->up);
  EXPECT_FALSE(CentralInterval(xs, 0.0).ok());
  EXPECT_FALSE(CentralInterval(xs, 1.0).ok());
}

TEST(StatsTest, MadOfSymmetricData) {
  std::vector<double> xs = {1, 2, 3, 4, 5, 6, 7};
  EXPECT_NEAR(Mad(xs), 1.4826 * 2.0, 1e-9);
}

TEST(StatsTest, MinMax) {
  Interval mm = MinMax({3.0, -1.0, 7.0});
  EXPECT_DOUBLE_EQ(mm.lo, -1.0);
  EXPECT_DOUBLE_EQ(mm.up, 7.0);
}

TEST(StatsTest, LogSumExpStable) {
  // Direct exp would overflow.
  std::vector<double> xs = {1000.0, 1000.0};
  EXPECT_NEAR(LogSumExp(xs), 1000.0 + std::log(2.0), 1e-9);
  EXPECT_NEAR(LogSumExp({0.0, 0.0, 0.0}), std::log(3.0), 1e-12);
}

}  // namespace
}  // namespace bagcpd
