#include "bagcpd/common/rng.h"

#include <cmath>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "bagcpd/common/stats.h"

namespace bagcpd {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.Uniform() == b.Uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, ForkDecorrelates) {
  Rng base(7);
  Rng f1 = base.Fork(1);
  Rng f2 = base.Fork(2);
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (f1.Uniform() == f2.Uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-2.0, 5.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntInclusive) {
  Rng rng(4);
  std::set<int> seen;
  for (int i = 0; i < 500; ++i) {
    const int v = rng.UniformInt(1, 4);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 4);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(5);
  std::vector<double> xs(20000);
  for (double& x : xs) x = rng.Gaussian(2.0, 3.0);
  EXPECT_NEAR(Mean(xs), 2.0, 0.1);
  EXPECT_NEAR(StdDev(xs), 3.0, 0.1);
}

TEST(RngTest, PoissonMeanAndMinValue) {
  Rng rng(6);
  std::vector<double> xs(20000);
  for (double& x : xs) x = rng.Poisson(50.0);
  EXPECT_NEAR(Mean(xs), 50.0, 0.5);
  for (int i = 0; i < 200; ++i) {
    EXPECT_GE(rng.Poisson(0.01, 3), 3);
  }
}

TEST(RngTest, DirichletSumsToOne) {
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<double> g = rng.SymmetricDirichlet(5, 1.0);
    EXPECT_EQ(g.size(), 5u);
    const double total = std::accumulate(g.begin(), g.end(), 0.0);
    EXPECT_NEAR(total, 1.0, 1e-12);
    for (double v : g) EXPECT_GE(v, 0.0);
  }
}

TEST(RngTest, DirichletRespectsConcentration) {
  // Heavily skewed alpha concentrates mass on the large component.
  Rng rng(8);
  double mass0 = 0.0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> g = rng.Dirichlet({50.0, 1.0, 1.0});
    mass0 += g[0];
  }
  EXPECT_NEAR(mass0 / trials, 50.0 / 52.0, 0.02);
}

TEST(RngTest, MultinomialTotals) {
  Rng rng(9);
  for (int t = 0; t < 50; ++t) {
    std::vector<int> counts = rng.Multinomial(100, {0.2, 0.3, 0.5});
    EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0), 100);
    for (int c : counts) EXPECT_GE(c, 0);
  }
}

TEST(RngTest, MultinomialProportions) {
  Rng rng(10);
  std::vector<long> totals(3, 0);
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    std::vector<int> counts = rng.Multinomial(100, {0.2, 0.3, 0.5});
    for (int i = 0; i < 3; ++i) totals[i] += counts[i];
  }
  EXPECT_NEAR(totals[0] / (100.0 * trials), 0.2, 0.02);
  EXPECT_NEAR(totals[2] / (100.0 * trials), 0.5, 0.02);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(11);
  std::vector<int> counts(3, 0);
  for (int t = 0; t < 6000; ++t) {
    counts[rng.Categorical({1.0, 2.0, 3.0})]++;
  }
  EXPECT_NEAR(counts[0] / 6000.0, 1.0 / 6.0, 0.03);
  EXPECT_NEAR(counts[2] / 6000.0, 0.5, 0.03);
}

TEST(RngTest, PermutationIsValid) {
  Rng rng(12);
  std::vector<std::size_t> p = rng.Permutation(20);
  std::set<std::size_t> s(p.begin(), p.end());
  EXPECT_EQ(s.size(), 20u);
  EXPECT_EQ(*s.begin(), 0u);
  EXPECT_EQ(*s.rbegin(), 19u);
}

TEST(RngTest, MultivariateGaussianIsoShape) {
  Rng rng(13);
  Point x = rng.MultivariateGaussianIso({1.0, -1.0, 0.0}, 0.5);
  EXPECT_EQ(x.size(), 3u);
}

TEST(RngTest, MultivariateGaussianFullCovariance) {
  Rng rng(14);
  Matrix cov = Matrix::FromRows({{2.0, 0.8}, {0.8, 1.0}});
  std::vector<double> xs, ys;
  for (int i = 0; i < 20000; ++i) {
    Point p = rng.MultivariateGaussian({0.0, 0.0}, cov);
    xs.push_back(p[0]);
    ys.push_back(p[1]);
  }
  EXPECT_NEAR(Variance(xs), 2.0, 0.1);
  EXPECT_NEAR(Variance(ys), 1.0, 0.05);
  EXPECT_NEAR(Covariance(xs, ys), 0.8, 0.05);
}

}  // namespace
}  // namespace bagcpd
