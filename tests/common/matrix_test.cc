#include "bagcpd/common/matrix.h"

#include <cmath>

#include <gtest/gtest.h>

namespace bagcpd {
namespace {

TEST(MatrixTest, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(MatrixTest, FromRowsAndIdentity) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  Matrix id = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(id(2, 2), 1.0);
  EXPECT_DOUBLE_EQ(id(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(id.Trace(), 3.0);
}

TEST(MatrixTest, ArithmeticOps) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(0, 0), 6.0);
  Matrix diff = b - a;
  EXPECT_DOUBLE_EQ(diff(1, 1), 4.0);
  Matrix prod = a * b;
  EXPECT_DOUBLE_EQ(prod(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(prod(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(prod(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(prod(1, 1), 50.0);
  Matrix scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled(1, 0), 6.0);
}

TEST(MatrixTest, TransposeAndMatVec) {
  Matrix a = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  Matrix t = a.Transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  std::vector<double> v = {1.0, 0.0, -1.0};
  std::vector<double> out = a.MatVec(v);
  EXPECT_DOUBLE_EQ(out[0], -2.0);
  EXPECT_DOUBLE_EQ(out[1], -2.0);
}

TEST(MatrixTest, CholeskyOfSpdMatrix) {
  Matrix a = Matrix::FromRows({{4, 2}, {2, 3}});
  Result<Matrix> l = a.Cholesky();
  ASSERT_TRUE(l.ok());
  // Verify L L^T = A.
  Matrix reconstructed = l.ValueOrDie() * l.ValueOrDie().Transpose();
  EXPECT_LT(reconstructed.MaxAbsDiff(a), 1e-12);
}

TEST(MatrixTest, CholeskyFailsOnIndefinite) {
  Matrix a = Matrix::FromRows({{1, 2}, {2, 1}});  // Eigenvalues 3, -1.
  EXPECT_FALSE(a.Cholesky().ok());
  Matrix rect(2, 3);
  EXPECT_FALSE(rect.Cholesky().ok());
}

TEST(MatrixTest, SolveSpd) {
  Matrix a = Matrix::FromRows({{4, 2}, {2, 3}});
  Result<std::vector<double>> x = a.SolveSpd({10.0, 8.0});
  ASSERT_TRUE(x.ok());
  std::vector<double> ax = a.MatVec(x.ValueOrDie());
  EXPECT_NEAR(ax[0], 10.0, 1e-10);
  EXPECT_NEAR(ax[1], 8.0, 1e-10);
}

TEST(MatrixTest, SolveLuGeneral) {
  Matrix a = Matrix::FromRows({{0, 2, 1}, {3, -1, 2}, {1, 1, 1}});
  Result<std::vector<double>> x = a.SolveLu({5.0, 4.0, 3.0});
  ASSERT_TRUE(x.ok());
  std::vector<double> ax = a.MatVec(x.ValueOrDie());
  EXPECT_NEAR(ax[0], 5.0, 1e-10);
  EXPECT_NEAR(ax[1], 4.0, 1e-10);
  EXPECT_NEAR(ax[2], 3.0, 1e-10);
}

TEST(MatrixTest, SolveLuSingularFails) {
  Matrix a = Matrix::FromRows({{1, 2}, {2, 4}});
  EXPECT_FALSE(a.SolveLu({1.0, 2.0}).ok());
}

TEST(MatrixTest, IsSymmetric) {
  EXPECT_TRUE(Matrix::Identity(4).IsSymmetric());
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_FALSE(a.IsSymmetric());
  EXPECT_FALSE(Matrix(2, 3).IsSymmetric());
}

TEST(JacobiEigenTest, DiagonalMatrix) {
  Matrix a = Matrix::Diagonal({3.0, 1.0, 2.0});
  Result<SymmetricEigen> eig = JacobiEigenSymmetric(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->values[0], 3.0, 1e-12);
  EXPECT_NEAR(eig->values[1], 2.0, 1e-12);
  EXPECT_NEAR(eig->values[2], 1.0, 1e-12);
}

TEST(JacobiEigenTest, KnownTwoByTwo) {
  // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
  Matrix a = Matrix::FromRows({{2, 1}, {1, 2}});
  Result<SymmetricEigen> eig = JacobiEigenSymmetric(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->values[0], 3.0, 1e-10);
  EXPECT_NEAR(eig->values[1], 1.0, 1e-10);
}

TEST(JacobiEigenTest, EigenEquationHolds) {
  Matrix a = Matrix::FromRows(
      {{4, 1, 0.5}, {1, 3, -0.2}, {0.5, -0.2, 2}});
  Result<SymmetricEigen> eig = JacobiEigenSymmetric(a);
  ASSERT_TRUE(eig.ok());
  const std::size_t n = 3;
  for (std::size_t k = 0; k < n; ++k) {
    std::vector<double> v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = eig->vectors(i, k);
    std::vector<double> av = a.MatVec(v);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(av[i], eig->values[k] * v[i], 1e-9);
    }
  }
}

TEST(JacobiEigenTest, VectorsAreOrthonormal) {
  Matrix a = Matrix::FromRows(
      {{5, 2, 1, 0}, {2, 4, 0.5, 0.1}, {1, 0.5, 3, 0.2}, {0, 0.1, 0.2, 2}});
  Result<SymmetricEigen> eig = JacobiEigenSymmetric(a);
  ASSERT_TRUE(eig.ok());
  Matrix vtv = eig->vectors.Transpose() * eig->vectors;
  EXPECT_LT(vtv.MaxAbsDiff(Matrix::Identity(4)), 1e-9);
}

TEST(JacobiEigenTest, TraceEqualsEigenvalueSum) {
  Matrix a = Matrix::FromRows({{7, 1}, {1, -3}});
  Result<SymmetricEigen> eig = JacobiEigenSymmetric(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->values[0] + eig->values[1], a.Trace(), 1e-10);
}

TEST(JacobiEigenTest, RejectsAsymmetric) {
  Matrix a = Matrix::FromRows({{1, 2}, {0, 1}});
  EXPECT_FALSE(JacobiEigenSymmetric(a).ok());
}

}  // namespace
}  // namespace bagcpd
