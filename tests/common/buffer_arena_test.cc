#include "bagcpd/common/buffer_arena.h"

#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "bagcpd/common/flat_bag.h"

namespace bagcpd {
namespace {

TEST(BufferArenaTest, AcquireRoundsUpToSizeClass) {
  BufferArena arena;
  std::vector<double> small = arena.Acquire(1);
  EXPECT_GE(small.capacity(), arena.options().min_buffer_capacity);
  EXPECT_TRUE(small.empty());
  std::vector<double> big = arena.Acquire(1000);
  EXPECT_GE(big.capacity(), 1000u);
}

TEST(BufferArenaTest, SizeClassReuse) {
  BufferArena arena;
  std::vector<double> buffer = arena.Acquire(100);
  buffer.assign(100, 3.5);
  const double* payload = buffer.data();
  arena.Release(std::move(buffer));

  // Same class: the exact buffer comes back, empty.
  std::vector<double> reused = arena.Acquire(100);
  EXPECT_EQ(reused.data(), payload);
  EXPECT_TRUE(reused.empty());

  const BufferArenaStats stats = arena.stats();
  EXPECT_EQ(stats.acquires, 2u);
  EXPECT_EQ(stats.pool_hits, 1u);
  EXPECT_EQ(stats.releases, 1u);
  EXPECT_EQ(stats.pooled_buffers, 0u);
}

TEST(BufferArenaTest, LargerClassSatisfiesSmallerRequest) {
  BufferArena arena;
  std::vector<double> big = arena.Acquire(4096);
  const double* payload = big.data();
  arena.Release(std::move(big));
  // A smaller request may be served by the pooled larger buffer rather than
  // a fresh allocation.
  std::vector<double> small = arena.Acquire(64);
  EXPECT_EQ(small.data(), payload);
  EXPECT_GE(small.capacity(), 4096u);
}

TEST(BufferArenaTest, FreelistBoundDropsExcessReleases) {
  BufferArenaOptions options;
  options.max_buffers_per_class = 2;
  BufferArena arena(options);
  // Acquire five distinct buffers first so the releases all land on one
  // class's freelist at once.
  std::vector<std::vector<double>> held;
  for (int i = 0; i < 5; ++i) held.push_back(arena.Acquire(64));
  for (auto& buffer : held) arena.Release(std::move(buffer));
  const BufferArenaStats stats = arena.stats();
  EXPECT_EQ(stats.pooled_buffers, 2u);
  EXPECT_EQ(stats.dropped_releases, 3u);
}

TEST(BufferArenaTest, OutOfRangeCapacitiesAreNeverPooled) {
  BufferArenaOptions options;
  options.min_buffer_capacity = 64;
  options.max_buffer_capacity = 1024;
  BufferArena arena(options);
  // Oversized request: served but not pooled on return.
  std::vector<double> huge = arena.Acquire(10000);
  EXPECT_GE(huge.capacity(), 10000u);
  arena.Release(std::move(huge));
  // Undersized buffer (below the smallest class): dropped on return.
  std::vector<double> tiny;
  tiny.reserve(8);
  arena.Release(std::move(tiny));
  const BufferArenaStats stats = arena.stats();
  EXPECT_EQ(stats.pooled_buffers, 0u);
  EXPECT_EQ(stats.dropped_releases, 2u);
}

TEST(BufferArenaTest, CrossThreadReturn) {
  // The engine's steady-state pattern: buffers acquired on a producer thread
  // are released on a consumer thread. Run enough cycles that reuse must
  // occur for the final pooled/outstanding accounting to balance.
  BufferArena arena;
  constexpr int kRounds = 200;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<double> buffer = arena.Acquire(256);
    buffer.assign(256, static_cast<double>(round));
    std::thread consumer(
        [&arena](std::vector<double> owned) {
          ASSERT_EQ(owned.size(), 256u);
          arena.Release(std::move(owned));
        },
        std::move(buffer));
    consumer.join();
  }
  const BufferArenaStats stats = arena.stats();
  EXPECT_EQ(stats.acquires, static_cast<std::uint64_t>(kRounds));
  EXPECT_EQ(stats.releases, static_cast<std::uint64_t>(kRounds));
  // After the first round every acquire is served from the freelist.
  EXPECT_EQ(stats.pool_hits, static_cast<std::uint64_t>(kRounds - 1));
  EXPECT_EQ(stats.pooled_buffers, 1u);
}

TEST(BufferArenaTest, PooledBufferReleasesOnDestruction) {
  BufferArena arena;
  {
    PooledBuffer handle = PooledBuffer::AcquireFrom(&arena, 128);
    handle.vec().assign(128, 1.0);
    EXPECT_EQ(handle.arena(), &arena);
  }
  EXPECT_EQ(arena.stats().pooled_buffers, 1u);
  EXPECT_EQ(arena.stats().releases, 1u);
}

TEST(BufferArenaTest, PooledBufferCopyIsUnpooledMoveTransfers) {
  BufferArena arena;
  PooledBuffer original = PooledBuffer::AcquireFrom(&arena, 64);
  original.vec().assign(3, 2.0);

  PooledBuffer copy = original;
  EXPECT_EQ(copy.arena(), nullptr);  // Copies never double-release.
  EXPECT_EQ(copy.vec(), original.vec());

  PooledBuffer moved = std::move(original);
  EXPECT_EQ(moved.arena(), &arena);
  EXPECT_EQ(original.arena(), nullptr);  // NOLINT(bugprone-use-after-move)
  ASSERT_EQ(moved.vec().size(), 3u);
}

TEST(BufferArenaTest, PooledBufferDetachSeversArena) {
  BufferArena arena;
  std::vector<double> detached;
  {
    PooledBuffer handle = PooledBuffer::AcquireFrom(&arena, 64);
    handle.vec().assign(4, 9.0);
    detached = handle.Detach();
  }
  EXPECT_EQ(arena.stats().releases, 0u);
  EXPECT_EQ(detached.size(), 4u);
}

TEST(BufferArenaTest, FlatBagRecyclesThroughArena) {
  BufferArena arena;
  const Bag bag = {{1.0, 2.0}, {3.0, 4.0}};
  const double* payload = nullptr;
  {
    // Move out of the Result: ValueOrDie() yields an lvalue whose copy is an
    // unpooled fresh allocation, which would make the pointer check below
    // compare malloc reuse instead of arena recycling.
    FlatBag flat = FlatBag::FromBag(bag, &arena).MoveValueUnsafe();
    payload = flat.data();
    EXPECT_EQ(flat.ToBag(), bag);
  }
  // The next flatten of an equal-sized bag reuses the same buffer.
  FlatBag again = FlatBag::FromBag(bag, &arena).MoveValueUnsafe();
  EXPECT_EQ(again.data(), payload);
  EXPECT_EQ(again.ToBag(), bag);
  EXPECT_EQ(arena.stats().pool_hits, 1u);
}

}  // namespace
}  // namespace bagcpd
