#include "bagcpd/data/pamap_simulator.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "bagcpd/common/stats.h"

namespace bagcpd {
namespace {

PamapSimulatorOptions FastOptions() {
  PamapSimulatorOptions options;
  options.seed = 1;
  options.subject = 1;
  options.sampling_hz = 30.0;  // Lighter than the real 100 Hz for test speed.
  options.mean_bags_per_activity = 6.0;
  return options;
}

TEST(PamapTest, ActivityTableMatchesPaperTable1) {
  const auto& table = PamapActivityTable();
  ASSERT_EQ(table.size(), 12u);
  EXPECT_EQ(table[0].id, 1);
  EXPECT_EQ(table[0].name, "lying");
  EXPECT_EQ(table[6].id, 7);
  EXPECT_EQ(table[6].name, "descending stairs");
  EXPECT_EQ(table[11].id, 12);
  EXPECT_EQ(table[11].name, "rope jumping");
}

TEST(PamapTest, ProtocolHasFourteenEntriesWithRepeatedStairs) {
  const auto& order = PamapProtocolOrder();
  ASSERT_EQ(order.size(), 14u);
  int sixes = 0, sevens = 0;
  for (int id : order) {
    if (id == 6) ++sixes;
    if (id == 7) ++sevens;
  }
  EXPECT_EQ(sixes, 2);
  EXPECT_EQ(sevens, 2);
}

TEST(PamapTest, RecordingStructure) {
  PamapRecording rec = SimulatePamapSubject(FastOptions()).ValueOrDie();
  EXPECT_EQ(rec.stream.bags.size(), rec.activity_ids.size());
  EXPECT_EQ(rec.stream.bags.size(), rec.stream.segment_labels.size());
  // 14 protocol entries => 13 transitions.
  EXPECT_EQ(rec.stream.change_points.size(), 13u);
  // All bags are 4-dimensional.
  for (const Bag& bag : rec.stream.bags) {
    ASSERT_FALSE(bag.empty());
    EXPECT_EQ(bag.front().size(), 4u);
  }
}

TEST(PamapTest, BagSizesVary) {
  PamapRecording rec = SimulatePamapSubject(FastOptions()).ValueOrDie();
  std::set<std::size_t> sizes;
  for (const Bag& bag : rec.stream.bags) sizes.insert(bag.size());
  EXPECT_GT(sizes.size(), 5u);
}

TEST(PamapTest, HeartRateOrdersActivities) {
  PamapSimulatorOptions options = FastOptions();
  options.mean_bags_per_activity = 8.0;
  PamapRecording rec = SimulatePamapSubject(options).ValueOrDie();
  double lying_hr = 0.0, running_hr = 0.0;
  int lying_n = 0, running_n = 0;
  for (std::size_t t = 0; t < rec.stream.bags.size(); ++t) {
    const double hr = BagMean(rec.stream.bags[t])[0];
    if (rec.activity_ids[t] == 1) {
      lying_hr += hr;
      ++lying_n;
    } else if (rec.activity_ids[t] == 11) {
      running_hr += hr;
      ++running_n;
    }
  }
  ASSERT_GT(lying_n, 0);
  ASSERT_GT(running_n, 0);
  EXPECT_GT(running_hr / running_n, lying_hr / lying_n + 50.0);
}

TEST(PamapTest, SubjectsDiffer) {
  PamapSimulatorOptions s1 = FastOptions();
  PamapSimulatorOptions s2 = FastOptions();
  s2.subject = 2;
  PamapRecording r1 = SimulatePamapSubject(s1).ValueOrDie();
  PamapRecording r2 = SimulatePamapSubject(s2).ValueOrDie();
  // Subject idiosyncrasies (resting heart rate, vigor) make the very first
  // bag's sensor means differ.
  EXPECT_NE(BagMean(r1.stream.bags[0])[0], BagMean(r2.stream.bags[0])[0]);
}

TEST(PamapTest, ChangePointsAlignWithActivityBoundaries) {
  PamapRecording rec = SimulatePamapSubject(FastOptions()).ValueOrDie();
  for (std::size_t cp : rec.stream.change_points) {
    ASSERT_GT(cp, 0u);
    EXPECT_NE(rec.activity_ids[cp], rec.activity_ids[cp - 1]);
  }
}

TEST(PamapTest, RejectsBadOptions) {
  PamapSimulatorOptions bad = FastOptions();
  bad.subject = 0;
  EXPECT_FALSE(SimulatePamapSubject(bad).ok());
  bad = FastOptions();
  bad.sampling_hz = 0.0;
  EXPECT_FALSE(SimulatePamapSubject(bad).ok());
  bad = FastOptions();
  bad.dropout = 1.0;
  EXPECT_FALSE(SimulatePamapSubject(bad).ok());
}

}  // namespace
}  // namespace bagcpd
