#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "bagcpd/common/stats.h"
#include "bagcpd/data/ci_datasets.h"
#include "bagcpd/data/fig1.h"
#include "bagcpd/data/gmm.h"

namespace bagcpd {
namespace {

TEST(GmmTest, ValidateCatchesErrors) {
  GaussianMixture empty;
  EXPECT_FALSE(empty.Validate().ok());
  GmmComponent c;
  c.mean = {0.0};
  c.weight = -1.0;
  EXPECT_FALSE(GaussianMixture({c}).Validate().ok());
  c.weight = 1.0;
  c.sigma = 0.0;
  EXPECT_FALSE(GaussianMixture({c}).Validate().ok());
}

TEST(GmmTest, IsotropicSamplesHaveRightMoments) {
  GaussianMixture mix = GaussianMixture::Isotropic({2.0, -1.0}, 0.5);
  Rng rng(1);
  Bag bag = mix.SampleBag(20000, &rng);
  std::vector<double> xs, ys;
  for (const Point& p : bag) {
    xs.push_back(p[0]);
    ys.push_back(p[1]);
  }
  EXPECT_NEAR(Mean(xs), 2.0, 0.02);
  EXPECT_NEAR(Mean(ys), -1.0, 0.02);
  EXPECT_NEAR(StdDev(xs), 0.5, 0.02);
}

TEST(GmmTest, MixtureUsesAllComponents) {
  GaussianMixture mix = GaussianMixture::EqualWeight({{-10.0}, {10.0}}, 0.1);
  Rng rng(2);
  Bag bag = mix.SampleBag(1000, &rng);
  int negatives = 0;
  for (const Point& p : bag) {
    if (p[0] < 0.0) ++negatives;
  }
  EXPECT_GT(negatives, 350);
  EXPECT_LT(negatives, 650);
}

TEST(GmmTest, FullCovarianceComponent) {
  GmmComponent c;
  c.mean = {0.0, 0.0};
  c.covariance = Matrix::FromRows({{2.0, 0.5}, {0.5, 1.0}});
  GaussianMixture mix({c});
  ASSERT_TRUE(mix.Validate().ok());
  Rng rng(3);
  Bag bag = mix.SampleBag(20000, &rng);
  std::vector<double> xs, ys;
  for (const Point& p : bag) {
    xs.push_back(p[0]);
    ys.push_back(p[1]);
  }
  EXPECT_NEAR(Variance(xs), 2.0, 0.1);
  EXPECT_NEAR(Covariance(xs, ys), 0.5, 0.05);
}

TEST(Fig1Test, StructureMatchesPaper) {
  Fig1Options options;
  options.seed = 4;
  options.phase_length = 50;
  options.bag_size_rate = 100.0;  // Smaller bags for test speed.
  LabeledBagSequence stream = MakeFig1Stream(options).ValueOrDie();
  EXPECT_EQ(stream.bags.size(), 150u);
  EXPECT_EQ(stream.change_points, (std::vector<std::size_t>{50, 100}));
  EXPECT_EQ(stream.segment_labels[0], 0);
  EXPECT_EQ(stream.segment_labels[75], 1);
  EXPECT_EQ(stream.segment_labels[149], 2);
}

TEST(Fig1Test, SampleMeanAndVarianceCarryNoSignalButShapeDoes) {
  Fig1Options options;
  options.seed = 5;
  options.bag_size_rate = 300.0;
  LabeledBagSequence stream = MakeFig1Stream(options).ValueOrDie();
  // Phase means all ~0 (that is the point of the example)...
  auto phase_mean_of_means = [&](std::size_t lo, std::size_t hi) {
    double acc = 0.0;
    for (std::size_t t = lo; t < hi; ++t) acc += BagMean(stream.bags[t])[0];
    return acc / static_cast<double>(hi - lo);
  };
  EXPECT_NEAR(phase_mean_of_means(0, 50), 0.0, 0.3);
  EXPECT_NEAR(phase_mean_of_means(50, 100), 0.0, 0.3);
  EXPECT_NEAR(phase_mean_of_means(100, 150), 0.0, 0.3);
  // ...and the within-bag spread is variance-matched across phases, so even
  // second-moment monitoring sees nothing.
  auto phase_mean_std = [&](std::size_t lo, std::size_t hi) {
    double acc = 0.0;
    for (std::size_t t = lo; t < hi; ++t) {
      std::vector<double> xs;
      for (const Point& p : stream.bags[t]) xs.push_back(p[0]);
      acc += StdDev(xs);
    }
    return acc / static_cast<double>(hi - lo);
  };
  const double s1 = phase_mean_std(0, 50);
  const double s2 = phase_mean_std(50, 100);
  const double s3 = phase_mean_std(100, 150);
  EXPECT_NEAR(s1, 3.0, 0.15);
  EXPECT_NEAR(s2, 3.0, 0.15);
  EXPECT_NEAR(s3, 3.0, 0.15);
  // What DOES change is the modality: the central region empties out in the
  // bimodal phase and partially refills in the trimodal phase.
  auto central_fraction = [&](std::size_t lo, std::size_t hi) {
    double inside = 0.0, total = 0.0;
    for (std::size_t t = lo; t < hi; ++t) {
      for (const Point& p : stream.bags[t]) {
        if (std::abs(p[0]) < 1.0) inside += 1.0;
        total += 1.0;
      }
    }
    return inside / total;
  };
  const double c1 = central_fraction(0, 50);
  const double c2 = central_fraction(50, 100);
  const double c3 = central_fraction(100, 150);
  EXPECT_GT(c1, 3.0 * c2);  // Bimodal phase empties the center.
  EXPECT_GT(c3, 3.0 * c2);  // Trimodal phase refills it.
}

TEST(CiDatasetsTest, AllFiveGenerate) {
  CiDatasetOptions options;
  options.seed = 6;
  auto all = MakeAllCiDatasets(options).ValueOrDie();
  ASSERT_EQ(all.size(), 5u);
  for (const LabeledBagSequence& ds : all) {
    EXPECT_EQ(ds.bags.size(), 20u);
    for (const Bag& bag : ds.bags) {
      EXPECT_GE(bag.size(), 3u);
      EXPECT_EQ(bag.front().size(), 2u);
    }
  }
}

TEST(CiDatasetsTest, ChangePointsOnlyWhereExpected) {
  CiDatasetOptions options;
  options.seed = 7;
  EXPECT_TRUE(MakeCiDataset(1, options).ValueOrDie().change_points.empty());
  EXPECT_TRUE(MakeCiDataset(2, options).ValueOrDie().change_points.empty());
  EXPECT_TRUE(MakeCiDataset(3, options).ValueOrDie().change_points.empty());
  EXPECT_EQ(MakeCiDataset(4, options).ValueOrDie().change_points,
            (std::vector<std::size_t>{10}));
  EXPECT_EQ(MakeCiDataset(5, options).ValueOrDie().change_points,
            (std::vector<std::size_t>{10}));
}

TEST(CiDatasetsTest, Dataset4MeansJump) {
  CiDatasetOptions options;
  options.seed = 8;
  options.bag_size_rate = 200.0;
  LabeledBagSequence ds = MakeCiDataset(4, options).ValueOrDie();
  EXPECT_NEAR(BagMean(ds.bags[0])[0], 3.0, 0.5);
  EXPECT_NEAR(BagMean(ds.bags[15])[0], -3.0, 0.5);
}

TEST(CiDatasetsTest, Dataset1HasLargeSpread) {
  CiDatasetOptions options;
  options.seed = 9;
  options.bag_size_rate = 200.0;
  LabeledBagSequence ds = MakeCiDataset(1, options).ValueOrDie();
  std::vector<double> xs;
  for (const Point& p : ds.bags[0]) xs.push_back(p[0]);
  EXPECT_GT(StdDev(xs), 10.0);
}

TEST(CiDatasetsTest, Dataset3MeanMovesGradually) {
  CiDatasetOptions options;
  options.seed = 10;
  options.bag_size_rate = 300.0;
  LabeledBagSequence ds = MakeCiDataset(3, options).ValueOrDie();
  // Consecutive bag means are close; distant bags are farther apart.
  const double step = EuclideanDistance(BagMean(ds.bags[0]), BagMean(ds.bags[1]));
  const double far = EuclideanDistance(BagMean(ds.bags[0]), BagMean(ds.bags[5]));
  EXPECT_LT(step, far);
}

TEST(CiDatasetsTest, RejectsBadIndex) {
  CiDatasetOptions options;
  EXPECT_FALSE(MakeCiDataset(0, options).ok());
  EXPECT_FALSE(MakeCiDataset(6, options).ok());
}

TEST(CiDatasetsTest, DetectabilityFlags) {
  EXPECT_FALSE(CiDatasetHasDetectableChange(1));
  EXPECT_FALSE(CiDatasetHasDetectableChange(3));
  EXPECT_TRUE(CiDatasetHasDetectableChange(4));
  EXPECT_FALSE(CiDatasetHasDetectableChange(5));
}

TEST(CiDatasetsTest, BagSizesFollowPoisson) {
  CiDatasetOptions options;
  options.seed = 11;
  LabeledBagSequence ds = MakeCiDataset(1, options).ValueOrDie();
  std::set<std::size_t> sizes;
  double total = 0.0;
  for (const Bag& bag : ds.bags) {
    sizes.insert(bag.size());
    total += static_cast<double>(bag.size());
  }
  EXPECT_GT(sizes.size(), 3u);  // Sizes genuinely vary.
  EXPECT_NEAR(total / 20.0, 50.0, 10.0);
}

}  // namespace
}  // namespace bagcpd
