// Equivalence suite for the flat storage layer: every pipeline stage must
// produce bitwise-identical output whether a bag enters as the nested
// convenience type (Bag) or as flat contiguous storage (FlatBag/BagView).
// This is the contract that lets callers migrate incrementally: the flat
// path is a layout change, never a numeric change.

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bagcpd/analysis/mds.h"
#include "bagcpd/common/buffer_arena.h"
#include "bagcpd/common/flat_bag.h"
#include "bagcpd/common/rng.h"
#include "bagcpd/core/detector.h"
#include "bagcpd/data/gmm.h"
#include "bagcpd/emd/emd.h"
#include "bagcpd/runtime/stream_engine.h"
#include "bagcpd/signature/builder.h"
#include "bagcpd/signature/signature_set.h"

namespace bagcpd {
namespace {

Bag RandomBag(std::size_t n, std::size_t dim, Rng* rng) {
  Bag bag;
  bag.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Point x(dim);
    for (double& v : x) v = rng->Uniform(-5.0, 5.0);
    bag.push_back(std::move(x));
  }
  return bag;
}

BagSequence JumpStream(std::size_t length, std::size_t change_at,
                       std::uint64_t seed) {
  Rng rng(seed);
  const GaussianMixture before = GaussianMixture::Isotropic({0.0, 0.0}, 0.5);
  const GaussianMixture after = GaussianMixture::Isotropic({4.0, 4.0}, 0.5);
  BagSequence bags;
  for (std::size_t t = 0; t < length; ++t) {
    const GaussianMixture& mix =
        (change_at > 0 && t >= change_at) ? after : before;
    bags.push_back(mix.SampleBag(20, &rng));
  }
  return bags;
}

void ExpectBitwiseEqual(const Signature& a, const Signature& b,
                        const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  ASSERT_EQ(a.dim(), b.dim()) << what;
  EXPECT_EQ(a.flat_centers(), b.flat_centers()) << what;
  EXPECT_EQ(a.weights(), b.weights()) << what;
}

void ExpectBitwiseEqual(const std::vector<StepResult>& a,
                        const std::vector<StepResult>& b,
                        const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time) << what << " step " << i;
    EXPECT_EQ(a[i].score, b[i].score) << what << " step " << i;
    EXPECT_TRUE((std::isnan(a[i].ci_lo) && std::isnan(b[i].ci_lo)) ||
                a[i].ci_lo == b[i].ci_lo)
        << what << " step " << i;
    EXPECT_TRUE((std::isnan(a[i].ci_up) && std::isnan(b[i].ci_up)) ||
                a[i].ci_up == b[i].ci_up)
        << what << " step " << i;
    EXPECT_TRUE((std::isnan(a[i].xi) && std::isnan(b[i].xi)) ||
                a[i].xi == b[i].xi)
        << what << " step " << i;
    EXPECT_EQ(a[i].alarm, b[i].alarm) << what << " step " << i;
  }
}

TEST(FlatEquivalenceTest, EveryQuantizerMatchesBitwise) {
  Rng rng(11);
  for (SignatureMethod method :
       {SignatureMethod::kKMeans, SignatureMethod::kKMedoids,
        SignatureMethod::kLvq, SignatureMethod::kHistogram,
        SignatureMethod::kCentroid}) {
    const Bag bag = RandomBag(60, 3, &rng);
    const FlatBag flat = FlatBag::FromBag(bag).ValueOrDie();
    SignatureBuilderOptions options;
    options.method = method;
    options.k = 5;
    options.bin_width = 2.0;
    options.seed = 77;
    SignatureBuilder builder(options);
    const Signature nested = builder.Build(bag, 3).ValueOrDie();
    const Signature viewed = builder.Build(flat.view(), 3).ValueOrDie();
    ExpectBitwiseEqual(nested, viewed, SignatureMethodName(method));
  }
}

TEST(FlatEquivalenceTest, KMeansAssignmentAndInertiaMatchBitwise) {
  Rng rng(5);
  const Bag bag = RandomBag(100, 2, &rng);
  const FlatBag flat = FlatBag::FromBag(bag).ValueOrDie();
  KMeansOptions options;
  options.k = 7;
  options.seed = 123;
  const KMeansResult nested = KMeansQuantize(bag, options).ValueOrDie();
  const KMeansResult viewed =
      KMeansQuantize(flat.view(), options).ValueOrDie();
  ExpectBitwiseEqual(nested.signature, viewed.signature, "kmeans");
  EXPECT_EQ(nested.assignment, viewed.assignment);
  EXPECT_EQ(nested.inertia, viewed.inertia);
  EXPECT_EQ(nested.iterations, viewed.iterations);
}

TEST(FlatEquivalenceTest, EmdOverBothPathsMatchesBitwise) {
  Rng rng(21);
  SignatureBuilderOptions options;
  options.k = 6;
  options.seed = 9;
  SignatureBuilder builder(options);
  const Bag bag_a = RandomBag(40, 2, &rng);
  const Bag bag_b = RandomBag(50, 2, &rng);
  const Signature a_nested = builder.Build(bag_a, 0).ValueOrDie();
  const Signature b_nested = builder.Build(bag_b, 1).ValueOrDie();
  const Signature a_flat =
      builder.Build(FlatBag::FromBag(bag_a).ValueOrDie().view(), 0)
          .ValueOrDie();
  const Signature b_flat =
      builder.Build(FlatBag::FromBag(bag_b).ValueOrDie().view(), 1)
          .ValueOrDie();
  for (GroundDistance ground :
       {GroundDistance::kEuclidean, GroundDistance::kSquaredEuclidean,
        GroundDistance::kManhattan}) {
    const double nested = ComputeEmd(a_nested, b_nested, ground).ValueOrDie();
    const double flat = ComputeEmd(a_flat, b_flat, ground).ValueOrDie();
    EXPECT_EQ(nested, flat) << GroundDistanceName(ground);
  }
}

TEST(FlatEquivalenceTest, DetectorRunMatchesBitwise) {
  const BagSequence bags = JumpStream(24, 12, 99);
  const FlatBagSequence flat = FlattenSequence(bags).ValueOrDie();

  DetectorOptions options;
  options.tau = 4;
  options.tau_prime = 4;
  options.bootstrap.replicates = 60;
  options.signature.k = 4;
  options.seed = 2;

  auto nested_owner = BagStreamDetector::Create(options).MoveValueUnsafe();

  BagStreamDetector& nested = *nested_owner;
  const std::vector<StepResult> nested_results =
      nested.Run(bags).ValueOrDie();
  auto viewed_owner = BagStreamDetector::Create(options).MoveValueUnsafe();
  BagStreamDetector& viewed = *viewed_owner;
  const std::vector<StepResult> flat_results = viewed.Run(flat).ValueOrDie();
  ExpectBitwiseEqual(nested_results, flat_results, "detector");
}

TEST(FlatEquivalenceTest, ArenaPooledBuildMatchesMallocBuildBitwise) {
  // The pooled path is a storage change, never a numeric change: every
  // quantizer must produce the identical packed signature whether its
  // buffers come from malloc or recycle through an arena — including on
  // reuse, when the arena hands back a previously-used buffer.
  Rng rng(321);
  BufferArena arena;
  for (SignatureMethod method :
       {SignatureMethod::kKMeans, SignatureMethod::kKMedoids,
        SignatureMethod::kLvq, SignatureMethod::kHistogram,
        SignatureMethod::kCentroid}) {
    SignatureBuilderOptions options;
    options.method = method;
    options.k = 5;
    options.bin_width = 2.0;
    options.seed = 77;
    SignatureBuilder builder(options);
    for (int round = 0; round < 3; ++round) {
      const Bag bag = RandomBag(60, 3, &rng);
      const FlatBag flat = FlatBag::FromBag(bag).ValueOrDie();
      const Signature malloced =
          builder.Build(flat.view(), round).ValueOrDie();
      const Signature pooled =
          builder.Build(flat.view(), round, &arena).ValueOrDie();
      ExpectBitwiseEqual(malloced, pooled,
                         std::string(SignatureMethodName(method)) + " round " +
                             std::to_string(round));
    }
  }
  // The rounds actually exercised reuse, not just fresh allocations.
  EXPECT_GT(arena.stats().pool_hits, 0u);
}

TEST(FlatEquivalenceTest, DetectorWithArenaMatchesBitwise) {
  const BagSequence bags = JumpStream(24, 12, 44);
  DetectorOptions options;
  options.tau = 4;
  options.tau_prime = 4;
  options.bootstrap.replicates = 60;
  options.signature.k = 4;
  options.seed = 8;

  auto plain_owner = BagStreamDetector::Create(options).MoveValueUnsafe();

  BagStreamDetector& plain = *plain_owner;
  const std::vector<StepResult> baseline = plain.Run(bags).ValueOrDie();

  BufferArena arena;
  auto pooled_owner = BagStreamDetector::Create(options).MoveValueUnsafe();
  BagStreamDetector& pooled = *pooled_owner;
  pooled.set_buffer_arena(&arena);
  const std::vector<StepResult> with_arena = pooled.Run(bags).ValueOrDie();
  ExpectBitwiseEqual(baseline, with_arena, "detector with arena");
  EXPECT_GT(arena.stats().pool_hits, 0u);
}

TEST(FlatEquivalenceTest, SignatureSetBatchPathsMatchVectorPathsBitwise) {
  // Fig. 6-style batch analysis: pairwise EMD + MDS over the stream's
  // signatures must not change when the AoS vector is migrated to the
  // shared-buffer SignatureSet.
  const BagSequence bags = JumpStream(12, 6, 2024);
  SignatureBuilderOptions options;
  options.k = 4;
  options.seed = 19;
  SignatureBuilder builder(options);
  std::vector<Signature> vec;
  SignatureSet set;
  for (std::size_t t = 0; t < bags.size(); ++t) {
    vec.push_back(builder.Build(bags[t], t).ValueOrDie());
    ASSERT_TRUE(set.Append(vec.back()).ok());
  }
  const Matrix m_vec = PairwiseEmdMatrix(vec).ValueOrDie();
  const Matrix m_set = PairwiseEmdMatrix(set).ValueOrDie();
  for (std::size_t i = 0; i < m_vec.rows(); ++i) {
    for (std::size_t j = 0; j < m_vec.cols(); ++j) {
      EXPECT_EQ(m_vec(i, j), m_set(i, j)) << i << "," << j;
    }
  }
  const MdsEmbedding direct = ClassicalMds(m_vec, 2).ValueOrDie();
  const MdsEmbedding from_set = EmdMds(set, 2).ValueOrDie();
  ASSERT_EQ(direct.coordinates.rows(), from_set.coordinates.rows());
  for (std::size_t i = 0; i < direct.coordinates.rows(); ++i) {
    for (std::size_t j = 0; j < direct.coordinates.cols(); ++j) {
      EXPECT_EQ(direct.coordinates(i, j), from_set.coordinates(i, j));
    }
  }
}

TEST(FlatEquivalenceTest, EngineMatchesBitwiseForAnyShardCountAndIngestForm) {
  std::map<std::string, BagSequence> streams;
  for (int s = 0; s < 4; ++s) {
    streams["stream-" + std::to_string(s)] =
        JumpStream(18, (s % 2 == 0) ? 9 : 0, 500 + s);
  }

  StreamEngineOptions base;
  base.detector.tau = 4;
  base.detector.tau_prime = 4;
  base.detector.bootstrap.replicates = 40;
  base.detector.signature.k = 4;
  base.seed = 31;

  std::map<std::string, std::vector<StepResult>> baseline;
  for (std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    for (const bool flat_ingest : {false, true}) {
      StreamEngineOptions options = base;
      options.num_shards = shards;
      auto engine_owner = StreamEngine::Create(options).MoveValueUnsafe();
      StreamEngine& engine = *engine_owner;
      ASSERT_TRUE(engine.init_status().ok());
      for (const auto& [key, bags] : streams) {
        for (const Bag& bag : bags) {
          if (flat_ingest) {
            ASSERT_TRUE(
                engine.Submit(key, FlatBag::FromBag(bag).ValueOrDie()).ok());
          } else {
            ASSERT_TRUE(engine.Submit(key, bag).ok());
          }
        }
      }
      engine.Flush();
      std::map<std::string, std::vector<StepResult>> grouped;
      for (StreamStepResult& r : engine.Drain()) {
        grouped[r.stream_id].push_back(r.step);
      }
      if (baseline.empty()) {
        baseline = std::move(grouped);
        continue;
      }
      ASSERT_EQ(grouped.size(), baseline.size());
      for (const auto& [key, series] : baseline) {
        ExpectBitwiseEqual(series, grouped[key],
                           key + (flat_ingest ? " flat" : " nested") + " @ " +
                               std::to_string(shards) + " shards");
      }
    }
  }
}

}  // namespace
}  // namespace bagcpd
