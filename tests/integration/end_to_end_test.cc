// Cross-module integration tests: the full pipeline from raw observations
// (GMM bags, bipartite graphs) through signatures, EMD, scores, bootstrap
// CIs, and the adaptive alarm test, checked against the ground-truth change
// points of the generators.

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "bagcpd/analysis/metrics.h"
#include "bagcpd/core/detector.h"
#include "bagcpd/data/fig1.h"
#include "bagcpd/graph/features.h"
#include "bagcpd/graph/generators.h"

namespace bagcpd {
namespace {

TEST(EndToEndTest, Fig1MixtureShapeChangesAreDetected) {
  // A reduced Fig. 1: 3 phases of 15 steps, ~200 points per bag (the paper
  // uses ~300; smaller bags make the variance-matched shape change noisier).
  Fig1Options data_options;
  data_options.seed = 3;
  data_options.phase_length = 15;
  data_options.bag_size_rate = 200.0;
  LabeledBagSequence stream = MakeFig1Stream(data_options).ValueOrDie();

  DetectorOptions options;
  options.tau = 5;
  options.tau_prime = 5;
  options.bootstrap.replicates = 150;
  options.signature.method = SignatureMethod::kKMeans;
  options.signature.k = 8;
  options.seed = 4;
  auto detector_owner = BagStreamDetector::Create(options).MoveValueUnsafe();
  BagStreamDetector& detector = *detector_owner;
  std::vector<StepResult> results = detector.Run(stream.bags).ValueOrDie();

  const std::vector<std::uint64_t> alarms = AlarmTimes(results);
  const DetectionReport report =
      EvaluateAlarms(alarms, stream.change_points, /*tolerance=*/4);
  EXPECT_EQ(report.missed, 0u)
      << "both mixture-shape changes must be detected";
  EXPECT_LE(report.false_positives, 1u);
}

TEST(EndToEndTest, SampleMeanReductionDestroysTheFig1Signal) {
  // The paper's core claim (Fig. 1): collapsing bags to their means makes the
  // change invisible. Run the same detector on centroid signatures.
  Fig1Options data_options;
  data_options.seed = 5;
  data_options.phase_length = 15;
  data_options.bag_size_rate = 80.0;
  LabeledBagSequence stream = MakeFig1Stream(data_options).ValueOrDie();

  DetectorOptions options;
  options.tau = 5;
  options.tau_prime = 5;
  options.bootstrap.replicates = 0;
  options.signature.k = 8;
  options.seed = 6;

  options.signature.method = SignatureMethod::kKMeans;
  auto full_owner = BagStreamDetector::Create(options).MoveValueUnsafe();
  BagStreamDetector& full = *full_owner;
  std::vector<StepResult> full_results = full.Run(stream.bags).ValueOrDie();

  options.signature.method = SignatureMethod::kCentroid;
  auto reduced_owner = BagStreamDetector::Create(options).MoveValueUnsafe();
  BagStreamDetector& reduced = *reduced_owner;
  std::vector<StepResult> reduced_results =
      reduced.Run(stream.bags).ValueOrDie();

  // Peak score near the first change, relative to the stationary background.
  auto contrast = [&](const std::vector<StepResult>& results) {
    double peak = 0.0, background = 1e-9;
    int n_background = 0;
    for (const StepResult& r : results) {
      if (r.time >= 15 && r.time <= 19) {
        peak = std::max(peak, r.score);
      } else if (r.time < 12) {
        background += std::abs(r.score);
        ++n_background;
      }
    }
    return peak / (background / std::max(1, n_background));
  };
  EXPECT_GT(contrast(full_results), 2.0 * contrast(reduced_results));
}

TEST(EndToEndTest, BipartiteTrafficChangeVisibleThroughStrengthFeature) {
  // Dataset-1-style stream at reduced scale; feature 5 (source strength)
  // must expose the traffic-level changes (the paper's Fig. 10 finding).
  BipartiteStreamOptions graph_options;
  graph_options.seed = 8;
  graph_options.node_rate = 80.0;
  graph_options.edge_density = 0.6;
  graph_options.length_scale = 0.4;  // Blocks of 8.
  BipartiteStream stream = MakeBipartiteDataset1(graph_options).ValueOrDie();

  BagSequence feature_bags;
  for (const BipartiteGraph& g : stream.graphs) {
    feature_bags.push_back(
        ExtractGraphFeature(g, GraphFeature::kSourceStrength).ValueOrDie());
  }

  DetectorOptions options;
  options.tau = 4;
  options.tau_prime = 3;  // The paper's network experiments use tau' = 3.
  options.bootstrap.replicates = 200;
  options.signature.method = SignatureMethod::kKMeans;
  options.signature.k = 6;
  options.seed = 9;
  auto detector_owner = BagStreamDetector::Create(options).MoveValueUnsafe();
  BagStreamDetector& detector = *detector_owner;
  std::vector<StepResult> results = detector.Run(feature_bags).ValueOrDie();

  const std::vector<std::uint64_t> alarms = AlarmTimes(results);
  const DetectionReport report =
      EvaluateAlarms(alarms, stream.change_points, /*tolerance=*/6);
  // Most changes must be caught at this reduced scale; additionally the raw
  // score must rank change-adjacent steps far above the background.
  EXPECT_GE(report.true_positives, 2u);
  std::vector<double> scores;
  std::vector<int> labels;
  for (const StepResult& r : results) {
    scores.push_back(r.score);
    bool near = false;
    for (std::size_t cp : stream.change_points) {
      // The KL score peaks sharply where ref/test windows straddle the
      // change; the clear elevation is within one step of the change point.
      if (r.time + 1 >= cp && r.time <= cp + 1) near = true;
    }
    labels.push_back(near ? 1 : 0);
  }
  EXPECT_GT(RocAuc(scores, labels).ValueOrDie(), 0.8);
}

TEST(EndToEndTest, ScoresAreFiniteEverywhere) {
  Fig1Options data_options;
  data_options.seed = 10;
  data_options.phase_length = 10;
  data_options.bag_size_rate = 40.0;
  LabeledBagSequence stream = MakeFig1Stream(data_options).ValueOrDie();
  DetectorOptions options;
  options.tau = 3;
  options.tau_prime = 3;
  options.bootstrap.replicates = 80;
  options.seed = 11;
  auto detector_owner = BagStreamDetector::Create(options).MoveValueUnsafe();
  BagStreamDetector& detector = *detector_owner;
  std::vector<StepResult> results = detector.Run(stream.bags).ValueOrDie();
  ASSERT_FALSE(results.empty());
  for (const StepResult& r : results) {
    EXPECT_TRUE(std::isfinite(r.score)) << "t=" << r.time;
    EXPECT_TRUE(std::isfinite(r.ci_lo)) << "t=" << r.time;
    EXPECT_TRUE(std::isfinite(r.ci_up)) << "t=" << r.time;
    EXPECT_LE(r.ci_lo, r.ci_up);
  }
}

TEST(EndToEndTest, LrScoreAlsoDetectsFig1Changes) {
  Fig1Options data_options;
  data_options.seed = 12;
  data_options.phase_length = 15;
  data_options.bag_size_rate = 80.0;
  LabeledBagSequence stream = MakeFig1Stream(data_options).ValueOrDie();
  DetectorOptions options;
  options.tau = 5;
  options.tau_prime = 5;
  options.score_type = ScoreType::kLogLikelihoodRatio;
  options.bootstrap.replicates = 0;
  options.signature.k = 8;
  options.seed = 13;
  auto detector_owner = BagStreamDetector::Create(options).MoveValueUnsafe();
  BagStreamDetector& detector = *detector_owner;
  std::vector<StepResult> results = detector.Run(stream.bags).ValueOrDie();
  // Use score-level AUC: times near true changes must rank above the rest.
  std::vector<double> scores;
  std::vector<int> labels;
  for (const StepResult& r : results) {
    scores.push_back(r.score);
    bool near = false;
    for (std::size_t cp : stream.change_points) {
      if (r.time >= cp && r.time <= cp + 4) near = true;
    }
    labels.push_back(near ? 1 : 0);
  }
  const double auc = RocAuc(scores, labels).ValueOrDie();
  EXPECT_GT(auc, 0.8);
}

}  // namespace
}  // namespace bagcpd
