#include "bagcpd/core/segmentation.h"

#include <gtest/gtest.h>

#include "bagcpd/data/bag_generators.h"

namespace bagcpd {
namespace {

// Three clearly separated regimes over 36 bags.
LabeledBagSequence ThreeRegimes(std::uint64_t seed) {
  MixtureStreamOptions options;
  options.bag_size_rate = 60.0;
  options.seed = seed;
  return GenerateMixtureStream(
             "three-regimes", 36,
             [](std::size_t t) {
               if (t < 12) return GaussianMixture::Isotropic({0.0, 0.0}, 1.0);
               if (t < 24) return GaussianMixture::Isotropic({6.0, 0.0}, 1.0);
               return GaussianMixture::Isotropic({0.0, 6.0}, 1.0);
             },
             [](std::size_t t) { return static_cast<int>(t / 12); }, options)
      .ValueOrDie();
}

SegmentationOptions FastOptions() {
  SegmentationOptions options;
  options.detector.tau = 4;
  options.detector.tau_prime = 4;
  options.detector.bootstrap.replicates = 150;
  options.detector.signature.k = 6;
  options.detector.seed = 5;
  options.min_segment_length = 3;
  return options;
}

TEST(SegmentationTest, RecoversThreeSegments) {
  LabeledBagSequence stream = ThreeRegimes(1);
  SegmentationResult result =
      SegmentBagSequence(stream.bags, FastOptions()).ValueOrDie();
  ASSERT_EQ(result.segments.size(), 3u);
  EXPECT_EQ(result.boundaries.size(), 2u);
  // Boundaries land within 2 bags of the planted changes at 12 and 24.
  EXPECT_NEAR(static_cast<double>(result.boundaries[0]), 12.0, 2.0);
  EXPECT_NEAR(static_cast<double>(result.boundaries[1]), 24.0, 2.0);
}

TEST(SegmentationTest, SegmentsTileTheSequence) {
  LabeledBagSequence stream = ThreeRegimes(2);
  SegmentationResult result =
      SegmentBagSequence(stream.bags, FastOptions()).ValueOrDie();
  ASSERT_FALSE(result.segments.empty());
  EXPECT_EQ(result.segments.front().begin, 0u);
  EXPECT_EQ(result.segments.back().end, stream.bags.size());
  for (std::size_t i = 1; i < result.segments.size(); ++i) {
    EXPECT_EQ(result.segments[i - 1].end, result.segments[i].begin);
    EXPECT_GT(result.segments[i].length(), 0u);
  }
}

TEST(SegmentationTest, StationarySequenceIsOneSegment) {
  MixtureStreamOptions stream_options;
  stream_options.bag_size_rate = 50.0;
  stream_options.seed = 3;
  LabeledBagSequence stream =
      GenerateMixtureStream(
          "flat", 24,
          [](std::size_t) {
            return GaussianMixture::Isotropic({0.0, 0.0}, 1.0);
          },
          [](std::size_t) { return 0; }, stream_options)
          .ValueOrDie();
  SegmentationResult result =
      SegmentBagSequence(stream.bags, FastOptions()).ValueOrDie();
  EXPECT_EQ(result.segments.size(), 1u);
  EXPECT_TRUE(result.boundaries.empty());
}

TEST(SegmentationTest, MinSegmentLengthMergesAlarmClusters) {
  LabeledBagSequence stream = ThreeRegimes(4);
  SegmentationOptions options = FastOptions();
  options.min_segment_length = 1;
  SegmentationResult loose =
      SegmentBagSequence(stream.bags, options).ValueOrDie();
  options.min_segment_length = 8;
  SegmentationResult tight =
      SegmentBagSequence(stream.bags, options).ValueOrDie();
  EXPECT_GE(loose.segments.size(), tight.segments.size());
  for (std::size_t i = 1; i < tight.boundaries.size(); ++i) {
    EXPECT_GE(tight.boundaries[i] - tight.boundaries[i - 1], 8u);
  }
}

TEST(SegmentationTest, RejectsBadInputs) {
  LabeledBagSequence stream = ThreeRegimes(5);
  SegmentationOptions options = FastOptions();
  options.detector.bootstrap.replicates = 0;
  EXPECT_FALSE(SegmentBagSequence(stream.bags, options).ok());
  options = FastOptions();
  options.min_segment_length = 0;
  EXPECT_FALSE(SegmentBagSequence(stream.bags, options).ok());
  options = FastOptions();
  BagSequence too_short(stream.bags.begin(), stream.bags.begin() + 5);
  EXPECT_FALSE(SegmentBagSequence(too_short, options).ok());
}

TEST(SegmentationTest, StepsExposedForInspection) {
  LabeledBagSequence stream = ThreeRegimes(6);
  SegmentationResult result =
      SegmentBagSequence(stream.bags, FastOptions()).ValueOrDie();
  EXPECT_EQ(result.steps.size(),
            stream.bags.size() - (4 + 4) + 1);
}

}  // namespace
}  // namespace bagcpd
