#include "bagcpd/core/feature_selector.h"

#include <gtest/gtest.h>

#include "bagcpd/common/rng.h"

namespace bagcpd {
namespace {

// Two segments that differ only in dimension 0; dimension 1 is pure noise.
BagSequence MakeLabeledData(std::vector<int>* labels, std::uint64_t seed) {
  Rng rng(seed);
  BagSequence bags;
  labels->clear();
  for (int t = 0; t < 20; ++t) {
    const bool second = t >= 10;
    Bag bag;
    for (int i = 0; i < 40; ++i) {
      bag.push_back({rng.Gaussian(second ? 5.0 : 0.0, 1.0),
                     rng.Gaussian(0.0, 1.0)});
    }
    bags.push_back(std::move(bag));
    labels->push_back(second ? 1 : 0);
  }
  return bags;
}

TEST(FeatureSelectorTest, UpweightsDiscriminativeDimension) {
  std::vector<int> labels;
  BagSequence bags = MakeLabeledData(&labels, 1);
  Result<std::vector<double>> scale = LearnFeatureScaling(bags, labels);
  ASSERT_TRUE(scale.ok());
  ASSERT_EQ(scale->size(), 2u);
  EXPECT_GT((*scale)[0], (*scale)[1]);
  EXPECT_GT((*scale)[0], 1.0);
}

TEST(FeatureSelectorTest, PruningZeroesIrrelevantDims) {
  std::vector<int> labels;
  BagSequence bags = MakeLabeledData(&labels, 2);
  FeatureSelectorOptions options;
  options.prune_below = 0.5;  // Dim 1's ratio is far below half of dim 0's.
  Result<std::vector<double>> scale = LearnFeatureScaling(bags, labels, options);
  ASSERT_TRUE(scale.ok());
  EXPECT_NEAR((*scale)[1], options.pruned_scale, 1e-12);
}

TEST(FeatureSelectorTest, ApplyScalesPoints) {
  Bag bag = {{2.0, 4.0}};
  Result<Bag> scaled = ApplyFeatureScaling(bag, {0.5, 2.0});
  ASSERT_TRUE(scaled.ok());
  EXPECT_DOUBLE_EQ((*scaled)[0][0], 1.0);
  EXPECT_DOUBLE_EQ((*scaled)[0][1], 8.0);
}

TEST(FeatureSelectorTest, ApplyToSequence) {
  BagSequence bags = {{{1.0}}, {{2.0}}};
  Result<BagSequence> scaled = ApplyFeatureScaling(bags, {3.0});
  ASSERT_TRUE(scaled.ok());
  EXPECT_DOUBLE_EQ((*scaled)[1][0][0], 6.0);
}

TEST(FeatureSelectorTest, RejectsMismatchedInputs) {
  std::vector<int> labels = {0};
  BagSequence bags = {{{1.0}}, {{2.0}}};
  EXPECT_FALSE(LearnFeatureScaling(bags, labels).ok());
  EXPECT_FALSE(ApplyFeatureScaling(Bag{{1.0, 2.0}}, {1.0}).ok());
}

TEST(FeatureSelectorTest, RejectsSingleSegment) {
  BagSequence bags = {{{1.0}}, {{2.0}}};
  std::vector<int> labels = {0, 0};
  EXPECT_FALSE(LearnFeatureScaling(bags, labels).ok());
}

TEST(FeatureSelectorTest, IdentityWhenNothingSeparates) {
  // Both segments identical distribution: ratios ~ 0, expect near-uniform
  // scaling (no dimension blown up).
  Rng rng(3);
  BagSequence bags;
  std::vector<int> labels;
  for (int t = 0; t < 10; ++t) {
    Bag bag;
    for (int i = 0; i < 30; ++i) {
      bag.push_back({rng.Gaussian(0.0, 1.0), rng.Gaussian(0.0, 1.0)});
    }
    bags.push_back(std::move(bag));
    labels.push_back(t >= 5 ? 1 : 0);
  }
  Result<std::vector<double>> scale = LearnFeatureScaling(bags, labels);
  ASSERT_TRUE(scale.ok());
  // No dimension should dominate by an order of magnitude.
  EXPECT_LT((*scale)[0] / (*scale)[1] + (*scale)[1] / (*scale)[0], 20.0);
}

}  // namespace
}  // namespace bagcpd
