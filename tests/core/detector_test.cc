#include "bagcpd/core/detector.h"

#include <cmath>

#include <gtest/gtest.h>

#include "bagcpd/data/ci_datasets.h"
#include "bagcpd/data/gmm.h"

namespace bagcpd {
namespace {

DetectorOptions FastOptions() {
  DetectorOptions options;
  options.tau = 5;
  options.tau_prime = 5;
  options.bootstrap.replicates = 120;
  options.bootstrap.alpha = 0.05;
  options.signature.method = SignatureMethod::kKMeans;
  options.signature.k = 6;
  options.seed = 1;
  return options;
}

TEST(DetectorTest, RejectsBadOptions) {
  DetectorOptions options = FastOptions();
  options.tau = 1;
  EXPECT_FALSE(BagStreamDetector::Create(options).ok());
  // The legacy constructor shim must keep surfacing the same failure through
  // init_status() (and refuse to operate).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  BagStreamDetector detector(options);
#pragma GCC diagnostic pop
  EXPECT_FALSE(detector.init_status().ok());
  EXPECT_FALSE(detector.Push({{1.0}}).ok());
}

TEST(DetectorTest, WarmupReturnsNullopt) {
  DetectorOptions options = FastOptions();
  auto detector_owner = BagStreamDetector::Create(options).MoveValueUnsafe();
  BagStreamDetector& detector = *detector_owner;
  ASSERT_TRUE(detector.init_status().ok());
  Rng rng(7);
  const GaussianMixture mix = GaussianMixture::Isotropic({0.0, 0.0}, 1.0);
  for (std::size_t i = 0; i + 1 < options.tau + options.tau_prime; ++i) {
    Result<std::optional<StepResult>> r = detector.Push(mix.SampleBag(30, &rng));
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r.ValueOrDie().has_value());
  }
  // The push completing the window yields the first result.
  Result<std::optional<StepResult>> r = detector.Push(mix.SampleBag(30, &rng));
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.ValueOrDie().has_value());
  EXPECT_EQ(r.ValueOrDie()->time, options.tau);
}

TEST(DetectorTest, RunProducesOneResultPerFullWindow) {
  DetectorOptions options = FastOptions();
  options.bootstrap.replicates = 0;  // Scores only, fast.
  auto detector_owner = BagStreamDetector::Create(options).MoveValueUnsafe();
  BagStreamDetector& detector = *detector_owner;
  Rng rng(8);
  const GaussianMixture mix = GaussianMixture::Isotropic({0.0, 0.0}, 1.0);
  BagSequence bags;
  for (int t = 0; t < 20; ++t) bags.push_back(mix.SampleBag(25, &rng));
  Result<std::vector<StepResult>> results = detector.Run(bags);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->size(), 20u - (options.tau + options.tau_prime) + 1);
  EXPECT_EQ(results->front().time, options.tau);
  EXPECT_EQ(results->back().time, 20u - options.tau_prime);
  // Without bootstrap no alarms are possible.
  EXPECT_TRUE(AlarmTimes(*results).empty());
  for (const StepResult& r : *results) {
    EXPECT_TRUE(std::isfinite(r.score));
    EXPECT_TRUE(std::isnan(r.ci_lo));
  }
}

TEST(DetectorTest, DetectsMeanJumpOnCiDataset4) {
  CiDatasetOptions data_options;
  data_options.seed = 42;
  LabeledBagSequence ds = MakeCiDataset(4, data_options).ValueOrDie();
  DetectorOptions options = FastOptions();
  options.seed = 5;
  auto detector_owner = BagStreamDetector::Create(options).MoveValueUnsafe();
  BagStreamDetector& detector = *detector_owner;
  Result<std::vector<StepResult>> results = detector.Run(ds.bags);
  ASSERT_TRUE(results.ok());
  std::vector<std::uint64_t> alarms = AlarmTimes(*results);
  ASSERT_FALSE(alarms.empty());
  // The jump is at t = 10 (0-based); alarms must be near it.
  for (std::uint64_t a : alarms) {
    EXPECT_GE(a, 9u);
    EXPECT_LE(a, 13u);
  }
}

TEST(DetectorTest, StationaryDatasetsRaiseNoAlarms) {
  for (int index : {1, 2, 3}) {
    CiDatasetOptions data_options;
    data_options.seed = 43 + static_cast<std::uint64_t>(index);
    LabeledBagSequence ds = MakeCiDataset(index, data_options).ValueOrDie();
    DetectorOptions options = FastOptions();
    options.seed = 6;
    auto detector_owner = BagStreamDetector::Create(options).MoveValueUnsafe();
    BagStreamDetector& detector = *detector_owner;
    Result<std::vector<StepResult>> results = detector.Run(ds.bags);
    ASSERT_TRUE(results.ok()) << "dataset " << index;
    EXPECT_TRUE(AlarmTimes(*results).empty())
        << "dataset " << index << " raised a false alarm";
  }
}

TEST(DetectorTest, ScoreRisesAtChangePoint) {
  CiDatasetOptions data_options;
  data_options.seed = 44;
  LabeledBagSequence ds = MakeCiDataset(4, data_options).ValueOrDie();
  DetectorOptions options = FastOptions();
  options.bootstrap.replicates = 0;
  auto detector_owner = BagStreamDetector::Create(options).MoveValueUnsafe();
  BagStreamDetector& detector = *detector_owner;
  std::vector<StepResult> results = detector.Run(ds.bags).ValueOrDie();
  double at_change = 0.0;
  double elsewhere = 0.0;
  int n_elsewhere = 0;
  for (const StepResult& r : results) {
    if (r.time == 10) {
      at_change = r.score;
    } else if (r.time < 8 || r.time > 13) {
      elsewhere += r.score;
      ++n_elsewhere;
    }
  }
  ASSERT_GT(n_elsewhere, 0);
  EXPECT_GT(at_change, elsewhere / n_elsewhere);
}

TEST(DetectorTest, DeterministicForSeed) {
  CiDatasetOptions data_options;
  data_options.seed = 45;
  LabeledBagSequence ds = MakeCiDataset(4, data_options).ValueOrDie();
  DetectorOptions options = FastOptions();
  auto d1_owner = BagStreamDetector::Create(options).MoveValueUnsafe();
  BagStreamDetector& d1 = *d1_owner;
  auto d2_owner = BagStreamDetector::Create(options).MoveValueUnsafe();
  BagStreamDetector& d2 = *d2_owner;
  std::vector<StepResult> r1 = d1.Run(ds.bags).ValueOrDie();
  std::vector<StepResult> r2 = d2.Run(ds.bags).ValueOrDie();
  ASSERT_EQ(r1.size(), r2.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1[i].score, r2[i].score);
    EXPECT_DOUBLE_EQ(r1[i].ci_lo, r2[i].ci_lo);
    EXPECT_EQ(r1[i].alarm, r2[i].alarm);
  }
}

TEST(DetectorTest, LrScoreTypeRuns) {
  CiDatasetOptions data_options;
  data_options.seed = 46;
  LabeledBagSequence ds = MakeCiDataset(4, data_options).ValueOrDie();
  DetectorOptions options = FastOptions();
  options.score_type = ScoreType::kLogLikelihoodRatio;
  auto detector_owner = BagStreamDetector::Create(options).MoveValueUnsafe();
  BagStreamDetector& detector = *detector_owner;
  Result<std::vector<StepResult>> results = detector.Run(ds.bags);
  ASSERT_TRUE(results.ok());
  EXPECT_FALSE(results->empty());
}

TEST(DetectorTest, DiscountedWeightsRun) {
  CiDatasetOptions data_options;
  data_options.seed = 47;
  LabeledBagSequence ds = MakeCiDataset(4, data_options).ValueOrDie();
  DetectorOptions options = FastOptions();
  options.weight_scheme = WeightScheme::kDiscounted;
  auto detector_owner = BagStreamDetector::Create(options).MoveValueUnsafe();
  BagStreamDetector& detector = *detector_owner;
  Result<std::vector<StepResult>> results = detector.Run(ds.bags);
  ASSERT_TRUE(results.ok());
  EXPECT_FALSE(results->empty());
}

TEST(DetectorTest, EachWindowPairSolvedExactlyOnce) {
  DetectorOptions options = FastOptions();
  options.bootstrap.replicates = 50;
  auto detector_owner = BagStreamDetector::Create(options).MoveValueUnsafe();
  BagStreamDetector& detector = *detector_owner;
  Rng rng(9);
  const GaussianMixture mix = GaussianMixture::Isotropic({0.0}, 1.0);
  for (int t = 0; t < 15; ++t) {
    ASSERT_TRUE(detector.Push(mix.SampleBag(20, &rng)).ok());
  }
  // Each step after warm-up adds (tau + tau' - 1) = 9 fresh EMDs; the first
  // full window costs C(10, 2) = 45. 15 pushes => 6 scored steps:
  // 45 + 5 * 9 = 90 misses — i.e. 90 transportation solves, never more. The
  // rolling score tables reuse every overlapping pair's log-distance without
  // re-querying the cache, so the serial path reads each pair exactly once
  // and hits stay at zero (prefilled pool runs produce the hits instead).
  EXPECT_EQ(detector.emd_cache_misses(), 90u);
  EXPECT_EQ(detector.emd_cache_hits(), 0u);
}

TEST(DetectorTest, AlarmRequiresHistory) {
  // xi_t is undefined (NaN) for the first tau' scored steps.
  DetectorOptions options = FastOptions();
  options.bootstrap.replicates = 60;
  auto detector_owner = BagStreamDetector::Create(options).MoveValueUnsafe();
  BagStreamDetector& detector = *detector_owner;
  Rng rng(10);
  const GaussianMixture mix = GaussianMixture::Isotropic({0.0}, 1.0);
  BagSequence bags;
  for (int t = 0; t < 16; ++t) bags.push_back(mix.SampleBag(20, &rng));
  std::vector<StepResult> results = detector.Run(bags).ValueOrDie();
  ASSERT_GE(results.size(), options.tau_prime + 1);
  for (std::size_t i = 0; i < options.tau_prime; ++i) {
    EXPECT_TRUE(std::isnan(results[i].xi));
    EXPECT_FALSE(results[i].alarm);
  }
  EXPECT_FALSE(std::isnan(results[options.tau_prime].xi));
}

TEST(DetectorTest, NormalizedSignaturesAlsoDetect) {
  // normalize = true switches every EMD to balanced transport (and, for 1-d
  // bags, onto the exact sweep fast path); detection must be unaffected.
  CiDatasetOptions data_options;
  data_options.seed = 48;
  LabeledBagSequence ds = MakeCiDataset(4, data_options).ValueOrDie();
  DetectorOptions options = FastOptions();
  options.signature.normalize = true;
  options.seed = 7;
  auto detector_owner = BagStreamDetector::Create(options).MoveValueUnsafe();
  BagStreamDetector& detector = *detector_owner;
  std::vector<StepResult> results = detector.Run(ds.bags).ValueOrDie();
  std::vector<std::uint64_t> alarms = AlarmTimes(results);
  ASSERT_FALSE(alarms.empty());
  for (std::uint64_t a : alarms) {
    EXPECT_GE(a, 9u);
    EXPECT_LE(a, 13u);
  }
}

TEST(DetectorTest, PushRejectsRaggedBag) {
  auto detector_owner = BagStreamDetector::Create(FastOptions()).MoveValueUnsafe();
  BagStreamDetector& detector = *detector_owner;
  EXPECT_FALSE(detector.Push({{1.0, 2.0}, {3.0}}).ok());
}

TEST(DetectorTest, WeightSchemeNames) {
  EXPECT_STREQ(WeightSchemeName(WeightScheme::kUniform), "uniform");
  EXPECT_STREQ(WeightSchemeName(WeightScheme::kDiscounted), "discounted");
}

}  // namespace
}  // namespace bagcpd
