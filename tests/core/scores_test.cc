#include "bagcpd/core/scores.h"

#include <cmath>

#include <gtest/gtest.h>

namespace bagcpd {
namespace {

// Builds a context where every ref-ref log distance is `rr`, every test-test
// log distance is `tt`, and every ref-test log distance is `rt`.
ScoreContext UniformContext(std::size_t tau, std::size_t tau_prime, double rr,
                            double tt, double rt) {
  ScoreContext ctx;
  ctx.log_ref_ref = Matrix(tau, tau, rr);
  ctx.log_test_test = Matrix(tau_prime, tau_prime, tt);
  ctx.log_ref_test = Matrix(tau, tau_prime, rt);
  for (std::size_t i = 0; i < tau; ++i) ctx.log_ref_ref(i, i) = 0.0;
  for (std::size_t i = 0; i < tau_prime; ++i) ctx.log_test_test(i, i) = 0.0;
  return ctx;
}

std::vector<double> UniformWeights(std::size_t n) {
  return std::vector<double>(n, 1.0 / static_cast<double>(n));
}

TEST(ScoresTest, KlZeroWhenAllDistancesEqual) {
  // If within- and cross-distances all share one log value, Eq. 17 cancels.
  ScoreContext ctx = UniformContext(4, 4, 1.3, 1.3, 1.3);
  Result<double> kl =
      ScoreSymmetrizedKl(ctx, UniformWeights(4), UniformWeights(4));
  ASSERT_TRUE(kl.ok());
  EXPECT_NEAR(kl.ValueOrDie(), 0.0, 1e-12);
}

TEST(ScoresTest, KlPositiveWhenCrossExceedsWithin) {
  // Cross-window distances larger than within-window: clear change signal.
  ScoreContext ctx = UniformContext(4, 4, 0.2, 0.2, 2.0);
  Result<double> kl =
      ScoreSymmetrizedKl(ctx, UniformWeights(4), UniformWeights(4));
  ASSERT_TRUE(kl.ok());
  // cross = 2.0; auto terms = 0.2 => 2.0 - 0.2 = 1.8.
  EXPECT_NEAR(kl.ValueOrDie(), 1.8, 1e-12);
}

TEST(ScoresTest, KlHandValueAsymmetricWindows) {
  ScoreContext ctx = UniformContext(3, 2, 0.5, 0.3, 1.1);
  Result<double> kl =
      ScoreSymmetrizedKl(ctx, UniformWeights(3), UniformWeights(2));
  ASSERT_TRUE(kl.ok());
  EXPECT_NEAR(kl.ValueOrDie(), 1.1 - 0.5 * (0.5 + 0.3), 1e-12);
}

TEST(ScoresTest, LrHandValue) {
  // tau = 2, tau' = 3. S_t = test element 0.
  ScoreContext ctx;
  ctx.log_ref_ref = Matrix(2, 2, 0.0);
  ctx.log_test_test = Matrix(3, 3, 0.0);
  ctx.log_ref_test = Matrix(2, 3, 0.0);
  // Distances from S_t to the reference bags: log values 1.0 and 2.0.
  ctx.log_ref_test(0, 0) = 1.0;
  ctx.log_ref_test(1, 0) = 2.0;
  // Distances from S_t to the other test bags: log values 0.4 and 0.6.
  ctx.log_test_test(1, 0) = 0.4;
  ctx.log_test_test(2, 0) = 0.6;
  const std::vector<double> gref = UniformWeights(2);
  const std::vector<double> gtest = UniformWeights(3);
  Result<double> lr = ScoreLogLikelihoodRatio(ctx, gref, gtest);
  ASSERT_TRUE(lr.ok());
  // I(S_t; S_ref) = (1 + 2)/2 = 1.5.
  // I(S_t; S_test\S_t) = ((1/3)(0.4) + (1/3)(0.6)) / (1 - 1/3) = 0.5.
  EXPECT_NEAR(lr.ValueOrDie(), 1.0, 1e-12);
}

TEST(ScoresTest, LrZeroWhenRefEqualsTestDistances) {
  ScoreContext ctx = UniformContext(3, 3, 0.7, 0.7, 0.7);
  Result<double> lr =
      ScoreLogLikelihoodRatio(ctx, UniformWeights(3), UniformWeights(3));
  ASSERT_TRUE(lr.ok());
  EXPECT_NEAR(lr.ValueOrDie(), 0.0, 1e-12);
}

TEST(ScoresTest, LrRequiresTauPrimeAtLeastTwo) {
  ScoreContext ctx = UniformContext(3, 1, 0.5, 0.5, 0.5);
  EXPECT_FALSE(
      ScoreLogLikelihoodRatio(ctx, UniformWeights(3), UniformWeights(1)).ok());
}

TEST(ScoresTest, KlRequiresBothWindowsAtLeastTwo) {
  ScoreContext ctx = UniformContext(1, 3, 0.5, 0.5, 0.5);
  EXPECT_FALSE(
      ScoreSymmetrizedKl(ctx, UniformWeights(1), UniformWeights(3)).ok());
}

TEST(ScoresTest, RejectsWeightSizeMismatch) {
  ScoreContext ctx = UniformContext(3, 3, 0.5, 0.5, 0.5);
  EXPECT_FALSE(
      ScoreSymmetrizedKl(ctx, UniformWeights(2), UniformWeights(3)).ok());
  EXPECT_FALSE(
      ScoreLogLikelihoodRatio(ctx, UniformWeights(3), UniformWeights(4)).ok());
}

TEST(ScoresTest, RejectsShapeMismatch) {
  ScoreContext ctx = UniformContext(3, 3, 0.5, 0.5, 0.5);
  ctx.log_ref_test = Matrix(2, 3, 0.5);
  EXPECT_FALSE(ctx.Validate().ok());
}

TEST(ScoresTest, GammaConcentrationShiftsLr) {
  // Putting all test weight on S_t itself must fail (division by zero in the
  // renormalization of S_test \ S_t).
  ScoreContext ctx = UniformContext(2, 2, 0.5, 0.5, 0.5);
  EXPECT_FALSE(ScoreLogLikelihoodRatio(ctx, UniformWeights(2), {1.0, 0.0}).ok());
  // Weight fully on the other test element works.
  EXPECT_TRUE(ScoreLogLikelihoodRatio(ctx, UniformWeights(2), {0.0, 1.0}).ok());
}

TEST(ScoresTest, ComputeScoreDispatch) {
  ScoreContext ctx = UniformContext(3, 3, 0.2, 0.2, 1.0);
  const double kl = ComputeScore(ScoreType::kSymmetrizedKl, ctx,
                                 UniformWeights(3), UniformWeights(3))
                        .ValueOrDie();
  const double lr = ComputeScore(ScoreType::kLogLikelihoodRatio, ctx,
                                 UniformWeights(3), UniformWeights(3))
                        .ValueOrDie();
  EXPECT_NEAR(kl, 0.8, 1e-12);
  EXPECT_NEAR(lr, 1.0 - 0.2, 1e-12);
}

TEST(ScoresTest, InfoScaleDoublesScores) {
  ScoreContext ctx = UniformContext(3, 3, 0.2, 0.2, 1.0);
  ctx.info.d = 2.0;
  const double kl = ComputeScore(ScoreType::kSymmetrizedKl, ctx,
                                 UniformWeights(3), UniformWeights(3))
                        .ValueOrDie();
  EXPECT_NEAR(kl, 1.6, 1e-12);
}

TEST(ScoresTest, ScoreTypeNames) {
  EXPECT_STREQ(ScoreTypeName(ScoreType::kLogLikelihoodRatio), "lr");
  EXPECT_STREQ(ScoreTypeName(ScoreType::kSymmetrizedKl), "kl");
}

}  // namespace
}  // namespace bagcpd
