#include "bagcpd/core/bootstrap.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "bagcpd/common/stats.h"

namespace bagcpd {
namespace {

std::vector<double> UniformPi(std::size_t n) {
  return std::vector<double>(n, 1.0 / static_cast<double>(n));
}

ScoreContext SimpleContext(std::size_t tau, std::size_t tau_prime) {
  ScoreContext ctx;
  ctx.log_ref_ref = Matrix(tau, tau, 0.3);
  ctx.log_test_test = Matrix(tau_prime, tau_prime, 0.4);
  ctx.log_ref_test = Matrix(tau, tau_prime, 1.0);
  for (std::size_t i = 0; i < tau; ++i) ctx.log_ref_ref(i, i) = 0.0;
  for (std::size_t i = 0; i < tau_prime; ++i) ctx.log_test_test(i, i) = 0.0;
  // Perturb so the score actually varies with the weights.
  ctx.log_ref_test(0, 0) = 2.0;
  ctx.log_ref_ref(0, 1) = 0.9;
  ctx.log_ref_ref(1, 0) = 0.9;
  return ctx;
}

// Appendix A: with uniform priors the Bayesian bootstrap weights are
// Dir(1, ..., 1): E[g_i] = 1/n, var[g_i] = (n - 1) / (n^2 (n + 1)),
// cor[g_i, g_j] = -1 / (n - 1).
TEST(BootstrapTest, BayesianWeightsMatchAppendixMoments) {
  const std::size_t n = 5;
  Rng rng(17);
  const int trials = 20000;
  std::vector<double> g0(trials), g1(trials);
  for (int t = 0; t < trials; ++t) {
    std::vector<double> g =
        ResampleWeights(BootstrapMethod::kBayesian, UniformPi(n), &rng);
    g0[t] = g[0];
    g1[t] = g[1];
  }
  const double nd = static_cast<double>(n);
  EXPECT_NEAR(Mean(g0), 1.0 / nd, 0.003);
  EXPECT_NEAR(Variance(g0), (nd - 1.0) / (nd * nd * (nd + 1.0)), 0.002);
  EXPECT_NEAR(Correlation(g0, g1), -1.0 / (nd - 1.0), 0.03);
}

// Appendix A: the standard bootstrap proportions f_i have E[f_i] = 1/n and
// var[f_i] = (n - 1)/n^3 = var[g_i] * (n + 1)/n.
TEST(BootstrapTest, StandardWeightsMatchAppendixMoments) {
  const std::size_t n = 5;
  Rng rng(18);
  const int trials = 20000;
  std::vector<double> f0(trials);
  for (int t = 0; t < trials; ++t) {
    std::vector<double> f =
        ResampleWeights(BootstrapMethod::kStandard, UniformPi(n), &rng);
    f0[t] = f[0];
  }
  const double nd = static_cast<double>(n);
  EXPECT_NEAR(Mean(f0), 1.0 / nd, 0.003);
  EXPECT_NEAR(Variance(f0), (nd - 1.0) / (nd * nd * nd), 0.002);
}

// Appendix B: with weighted priors pi, E[g_i] = pi_i and
// var[g_i] = pi_i (1 - pi_i) / (n + 1).
TEST(BootstrapTest, WeightedPriorMoments) {
  const std::vector<double> pi = {0.5, 0.3, 0.2};
  Rng rng(19);
  const int trials = 20000;
  std::vector<double> g0(trials);
  for (int t = 0; t < trials; ++t) {
    std::vector<double> g =
        ResampleWeights(BootstrapMethod::kBayesian, pi, &rng);
    g0[t] = g[0];
  }
  EXPECT_NEAR(Mean(g0), 0.5, 0.005);
  EXPECT_NEAR(Variance(g0), 0.5 * 0.5 / 4.0, 0.005);
}

TEST(BootstrapTest, WeightsAlwaysOnSimplex) {
  Rng rng(20);
  for (BootstrapMethod method :
       {BootstrapMethod::kBayesian, BootstrapMethod::kStandard}) {
    for (int t = 0; t < 200; ++t) {
      std::vector<double> g = ResampleWeights(method, UniformPi(7), &rng);
      double total = 0.0;
      for (double v : g) {
        EXPECT_GE(v, 0.0);
        total += v;
      }
      EXPECT_NEAR(total, 1.0, 1e-9);
    }
  }
}

// The Section 4.2 claim: with a small window the Bayesian bootstrap produces
// a smooth (continuous) replicate distribution while the standard bootstrap
// collapses onto few atoms.
TEST(BootstrapTest, BayesianSmootherThanStandardForSmallWindows) {
  Rng rng(21);
  const std::size_t n = 4;
  std::set<double> bayes_values;
  std::set<double> standard_values;
  for (int t = 0; t < 300; ++t) {
    std::vector<double> gb =
        ResampleWeights(BootstrapMethod::kBayesian, UniformPi(n), &rng);
    std::vector<double> gs =
        ResampleWeights(BootstrapMethod::kStandard, UniformPi(n), &rng);
    bayes_values.insert(std::round(gb[0] * 1e9) / 1e9);
    standard_values.insert(std::round(gs[0] * 1e9) / 1e9);
  }
  // Standard proportions live on {0, 1/4, 2/4, 3/4, 1}: at most 5 atoms.
  EXPECT_LE(standard_values.size(), 5u);
  EXPECT_GT(bayes_values.size(), 250u);
}

TEST(BootstrapTest, IntervalContainsCentralMass) {
  ScoreContext ctx = SimpleContext(5, 5);
  BootstrapOptions options;
  options.replicates = 400;
  options.alpha = 0.05;
  Rng rng(22);
  Result<BootstrapInterval> ci =
      BootstrapScoreInterval(ScoreType::kSymmetrizedKl, ctx, UniformPi(5),
                             UniformPi(5), options, &rng);
  ASSERT_TRUE(ci.ok());
  EXPECT_LE(ci->lo, ci->up);
  EXPECT_GE(ci->replicate_stddev, 0.0);
  // The point score with uniform base weights should fall inside the CI.
  const double point =
      ComputeScore(ScoreType::kSymmetrizedKl, ctx, UniformPi(5), UniformPi(5))
          .ValueOrDie();
  EXPECT_GE(point, ci->lo - 3.0 * ci->replicate_stddev);
  EXPECT_LE(point, ci->up + 3.0 * ci->replicate_stddev);
}

TEST(BootstrapTest, TighterAlphaWidensInterval) {
  ScoreContext ctx = SimpleContext(5, 5);
  BootstrapOptions wide;
  wide.replicates = 600;
  wide.alpha = 0.01;
  BootstrapOptions narrow;
  narrow.replicates = 600;
  narrow.alpha = 0.5;
  Rng rng1(23), rng2(23);
  const BootstrapInterval ci_wide =
      BootstrapScoreInterval(ScoreType::kSymmetrizedKl, ctx, UniformPi(5),
                             UniformPi(5), wide, &rng1)
          .ValueOrDie();
  const BootstrapInterval ci_narrow =
      BootstrapScoreInterval(ScoreType::kSymmetrizedKl, ctx, UniformPi(5),
                             UniformPi(5), narrow, &rng2)
          .ValueOrDie();
  EXPECT_GT(ci_wide.up - ci_wide.lo, ci_narrow.up - ci_narrow.lo);
}

TEST(BootstrapTest, WorksForLrScore) {
  ScoreContext ctx = SimpleContext(5, 5);
  BootstrapOptions options;
  options.replicates = 100;
  Rng rng(24);
  Result<BootstrapInterval> ci = BootstrapScoreInterval(
      ScoreType::kLogLikelihoodRatio, ctx, UniformPi(5), UniformPi(5), options,
      &rng);
  ASSERT_TRUE(ci.ok());
  EXPECT_LE(ci->lo, ci->up);
}

TEST(BootstrapTest, StandardBootstrapHandlesDegenerateTestDraws) {
  // With tau' = 2 the standard bootstrap frequently draws gamma_test = (1, 0)
  // which is invalid for scoreLR; the implementation must retry, not fail.
  ScoreContext ctx = SimpleContext(3, 2);
  BootstrapOptions options;
  options.replicates = 200;
  options.method = BootstrapMethod::kStandard;
  Rng rng(25);
  Result<BootstrapInterval> ci = BootstrapScoreInterval(
      ScoreType::kLogLikelihoodRatio, ctx, UniformPi(3), UniformPi(2), options,
      &rng);
  ASSERT_TRUE(ci.ok());
}

TEST(BootstrapTest, RejectsBadOptions) {
  ScoreContext ctx = SimpleContext(3, 3);
  Rng rng(26);
  BootstrapOptions too_few;
  too_few.replicates = 1;
  EXPECT_FALSE(BootstrapScoreInterval(ScoreType::kSymmetrizedKl, ctx,
                                      UniformPi(3), UniformPi(3), too_few, &rng)
                   .ok());
  BootstrapOptions bad_alpha;
  bad_alpha.alpha = 1.5;
  EXPECT_FALSE(BootstrapScoreInterval(ScoreType::kSymmetrizedKl, ctx,
                                      UniformPi(3), UniformPi(3), bad_alpha,
                                      &rng)
                   .ok());
  BootstrapOptions ok_options;
  EXPECT_FALSE(BootstrapScoreInterval(ScoreType::kSymmetrizedKl, ctx,
                                      UniformPi(2), UniformPi(3), ok_options,
                                      &rng)
                   .ok());
}

TEST(BootstrapTest, MethodNames) {
  EXPECT_STREQ(BootstrapMethodName(BootstrapMethod::kBayesian), "bayesian");
  EXPECT_STREQ(BootstrapMethodName(BootstrapMethod::kStandard), "standard");
}

}  // namespace
}  // namespace bagcpd
