#include "bagcpd/batch/batch_io.h"

#include <cmath>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bagcpd/batch/synthetic.h"
#include "bagcpd/common/buffer_arena.h"

namespace bagcpd {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void ExpectIdenticalTables(const BatchTable& a, const BatchTable& b) {
  ASSERT_EQ(a.group_count(), b.group_count());
  ASSERT_EQ(a.row_count(), b.row_count());
  ASSERT_EQ(a.step_count(), b.step_count());
  for (std::size_t g = 0; g < a.group_count(); ++g) {
    EXPECT_EQ(a.group_key(g), b.group_key(g));
    EXPECT_EQ(a.group_profile(g), b.group_profile(g));
    EXPECT_EQ(a.group_status(g).ok(), b.group_status(g).ok());
    EXPECT_EQ(a.group_dim(g), b.group_dim(g));
    ASSERT_EQ(a.group_step_count(g), b.group_step_count(g));
    for (std::size_t s = 0; s < a.group_step_count(g); ++s) {
      EXPECT_EQ(a.step_timestamp(g, s), b.step_timestamp(g, s));
      EXPECT_EQ(a.step_row_count(g, s), b.step_row_count(g, s));
    }
  }
  ASSERT_EQ(a.values().size(), b.values().size());
  EXPECT_EQ(std::memcmp(a.values().data(), b.values().data(),
                        a.values().size() * sizeof(double)),
            0);
}

BatchTable SampleTable() {
  BatchTableBuilder builder;
  // Values that stress shortest-round-trip formatting.
  EXPECT_TRUE(builder.AddRow("alpha", 1, Point{0.1, -2.5}).ok());
  EXPECT_TRUE(builder.AddRow("alpha", 1, Point{1.0 / 3.0, 1e-300}).ok());
  EXPECT_TRUE(builder.AddRow("alpha", 2, Point{-0.0, 12345.678901234567}).ok());
  EXPECT_TRUE(builder.AddRow("beta", 5, Point{7.0, 8.0}).ok());
  return builder.Build();
}

TEST(BatchIoTest, CsvRoundTripIsBitwiseIdentical) {
  const BatchTable table = SampleTable();
  const std::string path = TempPath("batch_roundtrip.csv");
  ASSERT_TRUE(WriteBatchTableCsv(path, table).ok());

  const Result<BatchTable> loaded = ReadBatchTableCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectIdenticalTables(loaded.ValueOrDie(), table);

  // write -> read -> write is byte-identical.
  const std::string path2 = TempPath("batch_roundtrip2.csv");
  ASSERT_TRUE(WriteBatchTableCsv(path2, loaded.ValueOrDie()).ok());
  EXPECT_EQ(ReadAll(path), ReadAll(path2));
}

TEST(BatchIoTest, CsvCarriesQuotedKeysAndProfiles) {
  BatchTableBuilder builder;
  // Keys with commas, quotes, and newlines exercise the RFC-4180 quoting
  // shared with io/csv.
  ASSERT_TRUE(builder.AddRow("user,7", 1, Point{1.0}, "fast").ok());
  ASSERT_TRUE(builder.AddRow("user,7", 2, Point{2.0}, "fast").ok());
  ASSERT_TRUE(builder.AddRow("say \"hi\"\nok", 1, Point{3.0}).ok());
  const BatchTable table = builder.Build();

  const std::string path = TempPath("batch_quoted.csv");
  ASSERT_TRUE(WriteBatchTableCsv(path, table).ok());
  const Result<BatchTable> loaded = ReadBatchTableCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectIdenticalTables(loaded.ValueOrDie(), table);
  // Profiles survive the trip.
  bool saw_profile = false;
  for (std::size_t g = 0; g < loaded.ValueOrDie().group_count(); ++g) {
    if (loaded.ValueOrDie().group_profile(g) == "fast") saw_profile = true;
  }
  EXPECT_TRUE(saw_profile);
}

TEST(BatchIoTest, CsvRejectsRaggedAndEmptyTables) {
  BatchTableBuilder builder;
  ASSERT_TRUE(builder.AddRow("a", 1, Point{1.0}).ok());
  ASSERT_TRUE(builder.AddRow("b", 1, Point{1.0, 2.0}).ok());  // mixed dims
  const BatchTable mixed = builder.Build();
  EXPECT_FALSE(WriteBatchTableCsv(TempPath("mixed.csv"), mixed).ok());

  const BatchTable empty;
  EXPECT_FALSE(WriteBatchTableCsv(TempPath("empty.csv"), empty).ok());
}

TEST(BatchIoTest, CsvReaderValidates) {
  EXPECT_FALSE(ReadBatchTableCsv(TempPath("no_such_file.csv")).ok());

  const std::string bad_header = TempPath("bad_header.csv");
  {
    std::ofstream out(bad_header);
    out << "key,when,v0\nk,1,2.0\n";
  }
  EXPECT_FALSE(ReadBatchTableCsv(bad_header).ok());

  const std::string bad_value = TempPath("bad_value.csv");
  {
    std::ofstream out(bad_value);
    out << "key,timestamp,v0\nk,1,not_a_number\n";
  }
  EXPECT_FALSE(ReadBatchTableCsv(bad_value).ok());

  const std::string bad_ts = TempPath("bad_ts.csv");
  {
    std::ofstream out(bad_ts);
    out << "key,timestamp,v0\nk,later,2.0\n";
  }
  EXPECT_FALSE(ReadBatchTableCsv(bad_ts).ok());
}

TEST(BatchIoTest, ReadersRejectNonFiniteValues) {
  // File boundaries are validation boundaries: a NaN/Inf observation fails
  // the load with a typed error naming where it sits, so poisoned data never
  // reaches a detector through the loaders.
  const std::string nan_csv = TempPath("nan_value.csv");
  {
    std::ofstream out(nan_csv);
    out << "key,timestamp,v0\nk,1,1.0\nk,2,nan\n";
  }
  const Result<BatchTable> csv = ReadBatchTableCsv(nan_csv);
  ASSERT_FALSE(csv.ok());
  EXPECT_EQ(csv.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(csv.status().message().find("non-finite"), std::string::npos);
  EXPECT_NE(csv.status().message().find("row 2"), std::string::npos);

  const std::string inf_csv = TempPath("inf_value.csv");
  {
    std::ofstream out(inf_csv);
    out << "key,timestamp,v0\nk,1,inf\n";
  }
  EXPECT_FALSE(ReadBatchTableCsv(inf_csv).ok());

  // The builder itself accepts any doubles (in-memory tables are the
  // caller's problem), so a NaN survives the write — and the binary reader
  // refuses it coming back.
  BatchTableBuilder builder;
  ASSERT_TRUE(builder.AddRow("k", 1, Point{1.0}).ok());
  ASSERT_TRUE(builder.AddRow("k", 2, Point{std::nan("")}).ok());
  const std::string nan_bin = TempPath("nan_value.bin");
  ASSERT_TRUE(WriteBatchTableBinary(nan_bin, builder.Build()).ok());
  const Result<BatchTable> bin = ReadBatchTableBinary(nan_bin);
  ASSERT_FALSE(bin.ok());
  EXPECT_EQ(bin.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bin.status().message().find("non-finite"), std::string::npos);
  EXPECT_NE(bin.status().message().find("'k'"), std::string::npos);
}

TEST(BatchIoTest, BinaryRoundTripIsBitwiseIdentical) {
  const BatchTable table = SampleTable();
  const std::string path = TempPath("batch_roundtrip.bin");
  ASSERT_TRUE(WriteBatchTableBinary(path, table).ok());
  const Result<BatchTable> loaded = ReadBatchTableBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectIdenticalTables(loaded.ValueOrDie(), table);

  const std::string path2 = TempPath("batch_roundtrip2.bin");
  ASSERT_TRUE(WriteBatchTableBinary(path2, loaded.ValueOrDie()).ok());
  EXPECT_EQ(ReadAll(path), ReadAll(path2));
}

TEST(BatchIoTest, BinaryRoundTripsRaggedGroupsAndProfiles) {
  BatchTableBuilder builder;
  ASSERT_TRUE(builder.AddRow("ragged", 1, Point{1.0, 2.0}).ok());
  ASSERT_TRUE(builder.AddRow("ragged", 2, Point{3.0}).ok());
  ASSERT_TRUE(builder.AddRow("ok", 1, Point{4.0}, "alt").ok());
  const BatchTable table = builder.Build();
  ASSERT_FALSE(table.group_status(1).ok());  // "ragged" sorts after "ok"

  const std::string path = TempPath("batch_ragged.bin");
  ASSERT_TRUE(WriteBatchTableBinary(path, table).ok());
  const Result<BatchTable> loaded = ReadBatchTableBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectIdenticalTables(loaded.ValueOrDie(), table);
  EXPECT_FALSE(loaded.ValueOrDie().group_status(1).ok());
  EXPECT_EQ(loaded.ValueOrDie().group_profile(0), "alt");
}

TEST(BatchIoTest, BinaryReaderValidates) {
  EXPECT_FALSE(ReadBatchTableBinary(TempPath("no_such_file.bin")).ok());

  const std::string bad_magic = TempPath("bad_magic.bin");
  {
    std::ofstream out(bad_magic, std::ios::binary);
    out << "NOTBAGCP" << std::string(16, '\0');
  }
  EXPECT_FALSE(ReadBatchTableBinary(bad_magic).ok());

  // Truncate a valid file: every prefix must fail cleanly, never crash.
  const std::string good = TempPath("batch_trunc_src.bin");
  ASSERT_TRUE(WriteBatchTableBinary(good, SampleTable()).ok());
  const std::string bytes = ReadAll(good);
  const std::string trunc = TempPath("batch_trunc.bin");
  for (std::size_t cut : {bytes.size() - 1, bytes.size() / 2, std::size_t{9}}) {
    std::ofstream out(trunc, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(cut));
    out.close();
    EXPECT_FALSE(ReadBatchTableBinary(trunc).ok()) << "cut=" << cut;
  }

  // Trailing garbage after a well-formed payload is rejected too.
  const std::string padded = TempPath("batch_padded.bin");
  {
    std::ofstream out(padded, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out << "extra";
  }
  EXPECT_FALSE(ReadBatchTableBinary(padded).ok());
}

TEST(BatchIoTest, CsvAndBinaryAgreeOnSyntheticCorpus) {
  BatchSeriesSpec spec;
  spec.num_groups = 20;
  spec.steps_per_group = 4;
  spec.points_per_step = 2;
  spec.dim = 2;
  spec.seed = 3;
  const Result<BatchTable> table = GenerateBatchSeries(spec);
  ASSERT_TRUE(table.ok());

  const std::string csv = TempPath("batch_corpus.csv");
  const std::string bin = TempPath("batch_corpus.bin");
  ASSERT_TRUE(WriteBatchTableCsv(csv, table.ValueOrDie()).ok());
  ASSERT_TRUE(WriteBatchTableBinary(bin, table.ValueOrDie()).ok());

  BufferArena arena;
  const Result<BatchTable> from_csv = ReadBatchTableCsv(csv, &arena);
  const Result<BatchTable> from_bin = ReadBatchTableBinary(bin, &arena);
  ASSERT_TRUE(from_csv.ok()) << from_csv.status().ToString();
  ASSERT_TRUE(from_bin.ok()) << from_bin.status().ToString();
  ExpectIdenticalTables(from_csv.ValueOrDie(), table.ValueOrDie());
  ExpectIdenticalTables(from_bin.ValueOrDie(), table.ValueOrDie());
}

}  // namespace
}  // namespace bagcpd
