#include "bagcpd/batch/batch_runner.h"

#include <cmath>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bagcpd/batch/synthetic.h"
#include "bagcpd/core/detector.h"
#include "bagcpd/runtime/stream_engine.h"
#include "bagcpd/runtime/thread_pool.h"

namespace bagcpd {
namespace {

// CIs off: the 10k-group matrix sweeps stay fast, and score columns are
// still fully exercised.
DetectorOptions FastDetector() {
  DetectorOptions options;
  options.tau = 2;
  options.tau_prime = 2;
  options.bootstrap.replicates = 0;
  options.signature.method = SignatureMethod::kKMeans;
  options.signature.k = 2;
  return options;
}

BatchSeriesSpec SmallCorpus(std::size_t groups) {
  BatchSeriesSpec spec;
  spec.num_groups = groups;
  spec.steps_per_group = 6;
  spec.points_per_step = 2;
  spec.dim = 1;
  spec.seed = 7;
  return spec;
}

// The pinned reference: one detector per group, strictly serial, in table
// order — exactly what RunBatchColumnar must reproduce bit for bit.
BatchResultTable SerialReference(const BatchTable& table,
                                 const BatchRunnerOptions& options) {
  BatchResultTable out;
  const double nan = std::nan("");
  for (std::size_t g = 0; g < table.group_count(); ++g) {
    if (!table.group_status(g).ok()) {
      out.quarantined.push_back(BatchResultTable::Quarantined{
          table.group_key(g), table.group_status(g),
          table.group_step_count(g)});
      continue;
    }
    const std::uint32_t group_index =
        static_cast<std::uint32_t>(out.keys.size());
    out.keys.push_back(table.group_key(g));
    out.profiles.push_back(kDefaultProfileName);
    DetectorOptions per_group = options.detector;
    per_group.seed = DerivePerStreamSeed(options.seed, table.group_key(g),
                                         kDefaultProfileName);
    std::unique_ptr<BagStreamDetector> detector =
        BagStreamDetector::Create(per_group).MoveValueUnsafe();
    const std::size_t steps = table.group_step_count(g);
    const std::size_t base = out.step.size();
    for (std::size_t s = 0; s < steps; ++s) {
      out.group.push_back(group_index);
      out.step.push_back(static_cast<std::uint32_t>(s));
      out.timestamp.push_back(table.step_timestamp(g, s));
      out.score.push_back(nan);
      out.ci_lo.push_back(nan);
      out.ci_up.push_back(nan);
      out.xi.push_back(nan);
      out.is_change.push_back(0);
      out.has_score.push_back(0);
    }
    for (std::size_t s = 0; s < steps; ++s) {
      Result<std::optional<StepResult>> pushed =
          detector->Push(table.step_bag(g, s));
      EXPECT_TRUE(pushed.ok()) << pushed.status().ToString();
      if (!pushed.ok() || !pushed.ValueOrDie().has_value()) continue;
      const StepResult& r = *pushed.ValueOrDie();
      const std::size_t row = base + static_cast<std::size_t>(r.time);
      out.score[row] = r.score;
      out.ci_lo[row] = r.ci_lo;
      out.ci_up[row] = r.ci_up;
      out.xi[row] = r.xi;
      out.is_change[row] = r.alarm ? 1 : 0;
      out.has_score[row] = 1;
    }
  }
  return out;
}

// Bitwise column comparison — NaN bit patterns included, which is what
// "bitwise-identical" means (EXPECT_EQ on doubles would reject NaNs).
void ExpectBitwiseEqual(const std::vector<double>& a,
                        const std::vector<double>& b, const char* column) {
  ASSERT_EQ(a.size(), b.size()) << column;
  ASSERT_EQ(
      std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0)
      << column << " differs";
}

void ExpectIdenticalResults(const BatchResultTable& a,
                            const BatchResultTable& b) {
  EXPECT_EQ(a.keys, b.keys);
  EXPECT_EQ(a.profiles, b.profiles);
  EXPECT_EQ(a.group, b.group);
  EXPECT_EQ(a.step, b.step);
  EXPECT_EQ(a.timestamp, b.timestamp);
  ExpectBitwiseEqual(a.score, b.score, "score");
  ExpectBitwiseEqual(a.ci_lo, b.ci_lo, "ci_lo");
  ExpectBitwiseEqual(a.ci_up, b.ci_up, "ci_up");
  ExpectBitwiseEqual(a.xi, b.xi, "xi");
  EXPECT_EQ(a.is_change, b.is_change);
  EXPECT_EQ(a.has_score, b.has_score);
  ASSERT_EQ(a.quarantined.size(), b.quarantined.size());
  for (std::size_t i = 0; i < a.quarantined.size(); ++i) {
    EXPECT_EQ(a.quarantined[i].key, b.quarantined[i].key);
    EXPECT_EQ(a.quarantined[i].steps, b.quarantined[i].steps);
  }
}

// The PR's acceptance matrix: a 10k-series synthetic table, every
// (shards, pool size) combination in {1, 2, 8} x {1, 2, 8}, all pinned
// bitwise to the serial one-detector-per-group reference loop.
TEST(BatchRunnerTest, TenThousandSeriesMatrixMatchesSerialReference) {
  const Result<BatchTable> table = GenerateBatchSeries(SmallCorpus(10000));
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  ASSERT_EQ(table.ValueOrDie().group_count(), 10000u);

  BatchRunnerOptions options;
  options.detector = FastDetector();
  options.seed = 42;
  const BatchResultTable reference =
      SerialReference(table.ValueOrDie(), options);
  // Row-count preservation: one output row per input step.
  ASSERT_EQ(reference.row_count(), table.ValueOrDie().step_count());

  for (std::size_t shards : {1u, 2u, 8u}) {
    for (std::size_t pool_size : {1u, 2u, 8u}) {
      ThreadPool pool(pool_size);
      BatchRunnerOptions run = options;
      run.num_shards = shards;
      run.pool = &pool;
      const Result<BatchResultTable> got =
          RunBatchColumnar(table.ValueOrDie(), run);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " pool=" + std::to_string(pool_size));
      EXPECT_EQ(got.ValueOrDie().row_count(), table.ValueOrDie().step_count());
      ExpectIdenticalResults(got.ValueOrDie(), reference);
    }
  }
}

TEST(BatchRunnerTest, BootstrapIntervalsMatchSerialReference) {
  const Result<BatchTable> table = GenerateBatchSeries(SmallCorpus(40));
  ASSERT_TRUE(table.ok());
  BatchRunnerOptions options;
  options.detector = FastDetector();
  options.detector.bootstrap.replicates = 40;
  options.seed = 11;
  const BatchResultTable reference =
      SerialReference(table.ValueOrDie(), options);
  ThreadPool pool(4);
  BatchRunnerOptions run = options;
  run.num_shards = 4;
  run.pool = &pool;
  const Result<BatchResultTable> got =
      RunBatchColumnar(table.ValueOrDie(), run);
  ASSERT_TRUE(got.ok());
  ExpectIdenticalResults(got.ValueOrDie(), reference);
  // CIs on: scored rows carry finite intervals.
  bool saw_interval = false;
  for (std::size_t r = 0; r < got.ValueOrDie().row_count(); ++r) {
    if (got.ValueOrDie().has_score[r] &&
        std::isfinite(got.ValueOrDie().ci_lo[r])) {
      saw_interval = true;
    }
  }
  EXPECT_TRUE(saw_interval);
}

TEST(BatchRunnerTest, MatchesStreamEngineRunBatchBitwise) {
  // The engine and the columnar runner must agree bitwise given the same
  // seed: both derive per-key detector seeds through DerivePerStreamSeed.
  const Result<BatchTable> table_or = GenerateBatchSeries(SmallCorpus(12));
  ASSERT_TRUE(table_or.ok());
  const BatchTable& table = table_or.ValueOrDie();

  BatchRunnerOptions options;
  options.detector = FastDetector();
  options.detector.bootstrap.replicates = 30;
  options.seed = 5;
  options.num_shards = 3;
  const Result<BatchResultTable> columnar = RunBatchColumnar(table, options);
  ASSERT_TRUE(columnar.ok());

  StreamEngineOptions engine_options;
  engine_options.num_shards = 2;
  engine_options.detector = options.detector;
  engine_options.seed = options.seed;
  auto engine = StreamEngine::Create(engine_options).MoveValueUnsafe();
  std::map<std::string, BagSequence> streams;
  for (std::size_t g = 0; g < table.group_count(); ++g) {
    BagSequence bags;
    for (std::size_t s = 0; s < table.group_step_count(g); ++s) {
      bags.push_back(table.step_bag(g, s).ToBag());
    }
    streams.emplace(table.group_key(g), std::move(bags));
  }
  const auto engine_results = engine->RunBatch(streams);
  ASSERT_TRUE(engine_results.ok());

  for (std::size_t r = 0; r < columnar.ValueOrDie().row_count(); ++r) {
    const BatchResultTable& t = columnar.ValueOrDie();
    if (!t.has_score[r]) continue;
    const std::string& key = t.keys[t.group[r]];
    const std::vector<StepResult>& series =
        engine_results.ValueOrDie().at(key);
    // Engine results are per-inspection-time; find the matching one.
    bool found = false;
    for (const StepResult& step : series) {
      if (step.time == t.step[r]) {
        found = true;
        EXPECT_EQ(std::memcmp(&step.score, &t.score[r], sizeof(double)), 0);
        EXPECT_EQ(std::memcmp(&step.ci_lo, &t.ci_lo[r], sizeof(double)), 0);
        EXPECT_EQ(std::memcmp(&step.ci_up, &t.ci_up[r], sizeof(double)), 0);
        EXPECT_EQ(std::memcmp(&step.xi, &t.xi[r], sizeof(double)), 0);
        EXPECT_EQ(step.alarm, t.is_change[r] != 0);
      }
    }
    EXPECT_TRUE(found) << key << " step " << t.step[r];
  }
}

TEST(BatchRunnerTest, QuarantinedGroupsAreReportedNeverDropped) {
  BatchTableBuilder builder;
  ASSERT_TRUE(builder.AddRow("ragged", 1, Point{1.0, 2.0}).ok());
  ASSERT_TRUE(builder.AddRow("ragged", 2, Point{3.0}).ok());
  for (int t = 0; t < 6; ++t) {
    ASSERT_TRUE(builder.AddRow("healthy", t, Point{double(t)}).ok());
  }
  const BatchTable table = builder.Build();

  BatchRunnerOptions options;
  options.detector = FastDetector();
  const Result<BatchResultTable> got = RunBatchColumnar(table, options);
  ASSERT_TRUE(got.ok());
  const BatchResultTable& result = got.ValueOrDie();
  ASSERT_EQ(result.keys.size(), 1u);
  EXPECT_EQ(result.keys[0], "healthy");
  EXPECT_EQ(result.row_count(), 6u);
  ASSERT_EQ(result.quarantined.size(), 1u);
  EXPECT_EQ(result.quarantined[0].key, "ragged");
  EXPECT_EQ(result.quarantined[0].steps, 2u);
  EXPECT_FALSE(result.quarantined[0].status.ok());
  // Full accounting: result rows + quarantined steps == input steps.
  EXPECT_EQ(result.row_count() + result.quarantined[0].steps,
            table.step_count());
}

TEST(BatchRunnerTest, ProfileRoutingAndConflicts) {
  BatchTableBuilder builder;
  for (int t = 0; t < 6; ++t) {
    ASSERT_TRUE(builder.AddRow("plain", t, Point{double(t)}).ok());
    ASSERT_TRUE(builder.AddRow("routed", t, Point{double(t)}).ok());
    ASSERT_TRUE(builder.AddRow("tabled", t, Point{double(t)}, "alt").ok());
    ASSERT_TRUE(builder.AddRow("unknown", t, Point{double(t)}, "ghost").ok());
  }
  const BatchTable table = builder.Build();

  BatchRunnerOptions options;
  options.detector = FastDetector();
  DetectorOptions alt = FastDetector();
  alt.tau = 3;
  options.profiles.emplace("alt", alt);
  options.profile_by_key.emplace("routed", "alt");
  const Result<BatchResultTable> got = RunBatchColumnar(table, options);
  ASSERT_TRUE(got.ok());
  const BatchResultTable& result = got.ValueOrDie();

  ASSERT_EQ(result.keys.size(), 3u);  // plain, routed, tabled
  std::map<std::string, std::string> profile_of;
  for (std::size_t i = 0; i < result.keys.size(); ++i) {
    profile_of[result.keys[i]] = result.profiles[i];
  }
  EXPECT_EQ(profile_of["plain"], kDefaultProfileName);
  EXPECT_EQ(profile_of["routed"], "alt");
  EXPECT_EQ(profile_of["tabled"], "alt");
  // The group naming an unregistered profile is quarantined, not fatal.
  ASSERT_EQ(result.quarantined.size(), 1u);
  EXPECT_EQ(result.quarantined[0].key, "unknown");

  // A table profile conflicting with the routing map quarantines too.
  BatchRunnerOptions conflicted = options;
  conflicted.profile_by_key["tabled"] = kDefaultProfileName;
  const Result<BatchResultTable> with_conflict =
      RunBatchColumnar(table, conflicted);
  ASSERT_TRUE(with_conflict.ok());
  EXPECT_EQ(with_conflict.ValueOrDie().quarantined.size(), 2u);

  // An unknown profile in the OPTIONS (caller-controlled) is a hard error.
  BatchRunnerOptions dangling = options;
  dangling.profile_by_key["plain"] = "nope";
  EXPECT_FALSE(RunBatchColumnar(table, dangling).ok());
}

TEST(BatchRunnerTest, NonFiniteStepsAreSkippedNotFatal) {
  // One poisoned observation must not take down its group (let alone the
  // batch): the step is skipped, reported in `skipped`, its row stays with
  // has_score = 0, and the group keeps scoring its later steps.
  const double nan = std::nan("");
  BatchTableBuilder builder;
  for (int t = 0; t < 8; ++t) {
    ASSERT_TRUE(
        builder.AddRow("dirty", t, Point{t == 2 ? nan : double(t)}).ok());
  }
  for (int t = 0; t < 6; ++t) {
    ASSERT_TRUE(builder.AddRow("clean", t, Point{double(t) * 0.5}).ok());
  }
  const BatchTable table = builder.Build();

  BatchRunnerOptions options;
  options.detector = FastDetector();
  const Result<BatchResultTable> got = RunBatchColumnar(table, options);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  const BatchResultTable& result = got.ValueOrDie();

  // Nothing quarantined, nothing dropped: full row accounting holds.
  EXPECT_TRUE(result.quarantined.empty());
  ASSERT_EQ(result.keys.size(), 2u);
  EXPECT_EQ(result.row_count(), table.step_count());
  ASSERT_EQ(result.skipped.size(), 1u);
  EXPECT_EQ(result.skipped[0].key, "dirty");
  EXPECT_EQ(result.skipped[0].step, 2u);
  EXPECT_EQ(result.skipped[0].status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.skipped[0].status.message().find("non-finite"),
            std::string::npos);

  // The skipped step's row survives, unscored.
  std::size_t dirty_base = 0;
  while (result.keys[result.group[dirty_base]] != "dirty") ++dirty_base;
  EXPECT_EQ(result.has_score[dirty_base + 2], 0);
  EXPECT_TRUE(std::isnan(result.score[dirty_base + 2]));

  // Scored rows match a detector that never saw the poisoned bag, with
  // detector time mapped back to table steps across the gap.
  DetectorOptions per_group = options.detector;
  per_group.seed =
      DerivePerStreamSeed(options.seed, "dirty", kDefaultProfileName);
  std::unique_ptr<BagStreamDetector> reference =
      BagStreamDetector::Create(per_group).MoveValueUnsafe();
  std::size_t dirty_group = 0;  // Builder order is canonical (sorted keys).
  while (table.group_key(dirty_group) != "dirty") ++dirty_group;
  std::vector<std::size_t> pushed_step;
  for (std::size_t s = 0; s < 8; ++s) {
    if (s == 2) continue;
    pushed_step.push_back(s);
    Result<std::optional<StepResult>> pushed =
        reference->Push(table.step_bag(dirty_group, s));
    ASSERT_TRUE(pushed.ok());
    if (!pushed.ValueOrDie().has_value()) continue;
    const StepResult& r = *pushed.ValueOrDie();
    const std::size_t row =
        dirty_base + pushed_step[static_cast<std::size_t>(r.time)];
    EXPECT_EQ(result.has_score[row], 1);
    EXPECT_EQ(result.score[row], r.score);
    EXPECT_EQ(result.is_change[row], r.alarm ? 1 : 0);
  }

  // The skip report and all columns are shard/pool-invariant.
  ThreadPool pool(3);
  BatchRunnerOptions sharded = options;
  sharded.num_shards = 3;
  sharded.pool = &pool;
  const Result<BatchResultTable> parallel = RunBatchColumnar(table, sharded);
  ASSERT_TRUE(parallel.ok());
  ExpectIdenticalResults(result, parallel.ValueOrDie());
  ASSERT_EQ(parallel.ValueOrDie().skipped.size(), 1u);
  EXPECT_EQ(parallel.ValueOrDie().skipped[0].step, 2u);
}

TEST(BatchRunnerTest, ValidatesOptions) {
  const BatchTable empty;
  BatchRunnerOptions options;
  options.detector = FastDetector();
  options.detector.seed = 9;  // Must be 0.
  EXPECT_FALSE(RunBatchColumnar(empty, options).ok());

  BatchRunnerOptions bad_profile;
  bad_profile.detector = FastDetector();
  DetectorOptions seeded = FastDetector();
  seeded.seed = 1;
  bad_profile.profiles.emplace("p", seeded);
  EXPECT_FALSE(RunBatchColumnar(empty, bad_profile).ok());

  BatchRunnerOptions reserved;
  reserved.detector = FastDetector();
  reserved.profiles.emplace(kDefaultProfileName, FastDetector());
  EXPECT_FALSE(RunBatchColumnar(empty, reserved).ok());

  BatchRunnerOptions fine;
  fine.detector = FastDetector();
  const Result<BatchResultTable> got = RunBatchColumnar(empty, fine);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.ValueOrDie().row_count(), 0u);
}

}  // namespace
}  // namespace bagcpd
