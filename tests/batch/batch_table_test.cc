#include "bagcpd/batch/batch_table.h"

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "bagcpd/common/buffer_arena.h"

namespace bagcpd {
namespace {

Point P(std::initializer_list<double> values) { return Point(values); }

// Bitwise table comparison: the canonical-layout guarantee is "identical",
// not "equivalent", so everything down to the value buffer bytes must match.
void ExpectIdenticalTables(const BatchTable& a, const BatchTable& b) {
  ASSERT_EQ(a.group_count(), b.group_count());
  ASSERT_EQ(a.row_count(), b.row_count());
  ASSERT_EQ(a.step_count(), b.step_count());
  for (std::size_t g = 0; g < a.group_count(); ++g) {
    EXPECT_EQ(a.group_key(g), b.group_key(g));
    EXPECT_EQ(a.group_profile(g), b.group_profile(g));
    EXPECT_EQ(a.group_status(g).ok(), b.group_status(g).ok());
    EXPECT_EQ(a.group_dim(g), b.group_dim(g));
    ASSERT_EQ(a.group_step_count(g), b.group_step_count(g));
    for (std::size_t s = 0; s < a.group_step_count(g); ++s) {
      EXPECT_EQ(a.step_timestamp(g, s), b.step_timestamp(g, s));
      EXPECT_EQ(a.step_row_count(g, s), b.step_row_count(g, s));
    }
  }
  ASSERT_EQ(a.values().size(), b.values().size());
  EXPECT_EQ(std::memcmp(a.values().data(), b.values().data(),
                        a.values().size() * sizeof(double)),
            0);
}

TEST(BatchTableTest, EmptyBuilderProducesEmptyTable) {
  BatchTableBuilder builder;
  const BatchTable table = builder.Build();
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.group_count(), 0u);
  EXPECT_EQ(table.row_count(), 0u);
  EXPECT_EQ(table.step_count(), 0u);
}

TEST(BatchTableTest, SingleGroupLayout) {
  BatchTableBuilder builder;
  ASSERT_TRUE(builder.AddRow("k", 10, P({1.0, 2.0})).ok());
  ASSERT_TRUE(builder.AddRow("k", 20, P({3.0, 4.0})).ok());
  ASSERT_TRUE(builder.AddRow("k", 30, P({5.0, 6.0})).ok());
  const BatchTable table = builder.Build();

  ASSERT_EQ(table.group_count(), 1u);
  EXPECT_EQ(table.group_key(0), "k");
  EXPECT_TRUE(table.group_status(0).ok());
  EXPECT_EQ(table.group_dim(0), 2u);
  ASSERT_EQ(table.group_step_count(0), 3u);
  EXPECT_EQ(table.row_count(), 3u);
  EXPECT_EQ(table.step_timestamp(0, 0), 10);
  EXPECT_EQ(table.step_timestamp(0, 2), 30);
  const BagView bag = table.step_bag(0, 1);
  ASSERT_EQ(bag.size(), 1u);
  EXPECT_EQ(bag[0][0], 3.0);
  EXPECT_EQ(bag[0][1], 4.0);
}

TEST(BatchTableTest, DuplicateKeyTimestampRowsFormOneBag) {
  BatchTableBuilder builder;
  ASSERT_TRUE(builder.AddRow("k", 5, P({1.0})).ok());
  ASSERT_TRUE(builder.AddRow("k", 5, P({2.0})).ok());
  ASSERT_TRUE(builder.AddRow("k", 5, P({3.0})).ok());
  ASSERT_TRUE(builder.AddRow("k", 6, P({4.0})).ok());
  const BatchTable table = builder.Build();

  ASSERT_EQ(table.group_count(), 1u);
  ASSERT_EQ(table.group_step_count(0), 2u);
  EXPECT_EQ(table.row_count(), 4u);
  EXPECT_EQ(table.step_row_count(0, 0), 3u);
  EXPECT_EQ(table.step_row_count(0, 1), 1u);
  const BagView bag = table.step_bag(0, 0);
  ASSERT_EQ(bag.size(), 3u);
  EXPECT_EQ(bag.dim(), 1u);
}

TEST(BatchTableTest, UnsortedInputMatchesPreSortedInputBitwise) {
  struct Row {
    const char* key;
    std::int64_t ts;
    Point p;
  };
  std::vector<Row> rows = {
      {"b", 2, P({5.0, 6.0})}, {"a", 1, P({1.0, 2.0})},
      {"b", 1, P({3.0, 4.0})}, {"a", 2, P({7.0, 8.0})},
      {"a", 1, P({0.5, 0.5})},  // duplicate (key, ts): second point in bag
  };
  BatchTableBuilder shuffled;
  for (const Row& r : rows) {
    ASSERT_TRUE(shuffled.AddRow(r.key, r.ts, r.p).ok());
  }

  // Pre-sorted order: by (key, timestamp, values).
  BatchTableBuilder sorted;
  ASSERT_TRUE(sorted.AddRow("a", 1, P({0.5, 0.5})).ok());
  ASSERT_TRUE(sorted.AddRow("a", 1, P({1.0, 2.0})).ok());
  ASSERT_TRUE(sorted.AddRow("a", 2, P({7.0, 8.0})).ok());
  ASSERT_TRUE(sorted.AddRow("b", 1, P({3.0, 4.0})).ok());
  ASSERT_TRUE(sorted.AddRow("b", 2, P({5.0, 6.0})).ok());

  ExpectIdenticalTables(shuffled.Build(), sorted.Build());
}

TEST(BatchTableTest, RaggedGroupIsQuarantinedNotFatal) {
  BatchTableBuilder builder;
  ASSERT_TRUE(builder.AddRow("ragged", 1, P({1.0, 2.0})).ok());
  ASSERT_TRUE(builder.AddRow("ragged", 2, P({3.0})).ok());  // dim 1 vs 2
  ASSERT_TRUE(builder.AddRow("healthy", 1, P({1.0})).ok());
  const BatchTable table = builder.Build();

  ASSERT_EQ(table.group_count(), 2u);
  // Groups are key-sorted: "healthy" < "ragged".
  EXPECT_EQ(table.group_key(0), "healthy");
  EXPECT_TRUE(table.group_status(0).ok());
  EXPECT_EQ(table.group_key(1), "ragged");
  EXPECT_FALSE(table.group_status(1).ok());
  EXPECT_EQ(table.group_dim(1), 0u);
  // Its rows are retained for accounting (and for binary round-trips).
  EXPECT_EQ(table.group_row_count(1), 2u);
  EXPECT_EQ(table.group_step_count(1), 2u);
  EXPECT_EQ(table.row_count(), 3u);
  // Per-row access still works on the ragged group.
  EXPECT_EQ(table.row_values(table.step_first_row(1, 1)).size(), 1u);
}

TEST(BatchTableTest, ConflictingProfilesQuarantineTheGroup) {
  BatchTableBuilder builder;
  ASSERT_TRUE(builder.AddRow("k", 1, P({1.0}), "fast").ok());
  ASSERT_TRUE(builder.AddRow("k", 2, P({2.0}), "slow").ok());
  const BatchTable table = builder.Build();
  ASSERT_EQ(table.group_count(), 1u);
  EXPECT_FALSE(table.group_status(0).ok());
  EXPECT_NE(table.group_status(0).message().find("conflicting profiles"),
            std::string::npos);
}

TEST(BatchTableTest, UniformProfileIsKept) {
  BatchTableBuilder builder;
  ASSERT_TRUE(builder.AddRow("k", 1, P({1.0}), "fast").ok());
  ASSERT_TRUE(builder.AddRow("k", 2, P({2.0}), "fast").ok());
  const BatchTable table = builder.Build();
  ASSERT_EQ(table.group_count(), 1u);
  EXPECT_TRUE(table.group_status(0).ok());
  EXPECT_EQ(table.group_profile(0), "fast");
}

TEST(BatchTableTest, RejectsEmptyKeyAndEmptyPoint) {
  BatchTableBuilder builder;
  EXPECT_FALSE(builder.AddRow("", 1, P({1.0})).ok());
  EXPECT_FALSE(builder.AddRow("k", 1, PointView()).ok());
  EXPECT_EQ(builder.row_count(), 0u);
}

TEST(BatchTableTest, ArenaBackedBuildIsIdenticalAndRecyclesBuffers) {
  BufferArena arena;
  BatchTableBuilder pooled(&arena);
  BatchTableBuilder plain;
  for (int t = 0; t < 8; ++t) {
    const Point p = P({double(t), double(t) * 2});
    ASSERT_TRUE(pooled.AddRow("k", t, p).ok());
    ASSERT_TRUE(plain.AddRow("k", t, p).ok());
  }
  {
    const BatchTable a = pooled.Build();
    const BatchTable b = plain.Build();
    ExpectIdenticalTables(a, b);
  }
  // The table's buffer (and the staging buffer) returned to the arena.
  EXPECT_GT(arena.stats().releases, 0u);
}

TEST(BatchTableTest, BuilderIsReusableAfterBuild) {
  BatchTableBuilder builder;
  ASSERT_TRUE(builder.AddRow("first", 1, P({1.0})).ok());
  const BatchTable first = builder.Build();
  ASSERT_EQ(first.group_count(), 1u);
  EXPECT_EQ(builder.row_count(), 0u);
  ASSERT_TRUE(builder.AddRow("second", 1, P({2.0})).ok());
  const BatchTable second = builder.Build();
  ASSERT_EQ(second.group_count(), 1u);
  EXPECT_EQ(second.group_key(0), "second");
}

}  // namespace
}  // namespace bagcpd
