// Detector snapshot/restore contract: a detector restored from an
// ExportState blob continues the stream bitwise-identically to the
// uninterrupted original — for every quantizer, for both approximate EMD
// solvers, and at every thread-pool size — and every malformed blob fails
// with a typed Status that leaves the target detector untouched.

#include <cmath>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bagcpd/common/buffer_arena.h"
#include "bagcpd/common/rng.h"
#include "bagcpd/core/detector.h"
#include "bagcpd/data/gmm.h"
#include "bagcpd/runtime/thread_pool.h"
#include "bagcpd/serialize/checkpoint.h"
#include "bagcpd/serialize/wire.h"

namespace bagcpd {
namespace {

DetectorOptions BaseOptions() {
  DetectorOptions options;
  options.tau = 3;
  options.tau_prime = 3;
  options.bootstrap.replicates = 40;
  options.signature.method = SignatureMethod::kKMeans;
  options.signature.k = 3;
  options.seed = 17;
  return options;
}

BagSequence JumpStream(std::size_t length, std::size_t change_at,
                       std::uint64_t seed) {
  Rng rng(seed);
  const GaussianMixture before = GaussianMixture::Isotropic({0.0, 0.0}, 0.5);
  const GaussianMixture after = GaussianMixture::Isotropic({4.0, 4.0}, 0.5);
  BagSequence bags;
  for (std::size_t t = 0; t < length; ++t) {
    const GaussianMixture& mix =
        (change_at > 0 && t >= change_at) ? after : before;
    bags.push_back(mix.SampleBag(14, &rng));
  }
  return bags;
}

void ExpectIdenticalStep(const std::optional<StepResult>& a,
                         const std::optional<StepResult>& b,
                         const std::string& what) {
  ASSERT_EQ(a.has_value(), b.has_value()) << what;
  if (!a.has_value()) return;
  EXPECT_EQ(a->time, b->time) << what;
  EXPECT_EQ(a->score, b->score) << what;
  EXPECT_TRUE((std::isnan(a->ci_lo) && std::isnan(b->ci_lo)) ||
              a->ci_lo == b->ci_lo)
      << what;
  EXPECT_TRUE((std::isnan(a->ci_up) && std::isnan(b->ci_up)) ||
              a->ci_up == b->ci_up)
      << what;
  EXPECT_TRUE((std::isnan(a->xi) && std::isnan(b->xi)) || a->xi == b->xi)
      << what;
  EXPECT_EQ(a->alarm, b->alarm) << what;
}

// The core pin: run `options` over a 16-bag stream, snapshot after
// `split` bags, restore into a fresh detector, and feed both the identical
// tail. Every step — and the final re-exported state — must match bitwise.
void RunRestorePin(const DetectorOptions& options, std::size_t split,
                   ThreadPool* pool, const std::string& what) {
  const BagSequence bags = JumpStream(16, 9, 101);

  auto original = BagStreamDetector::Create(options).MoveValueUnsafe();
  original->set_thread_pool(pool);
  for (std::size_t t = 0; t < split; ++t) {
    ASSERT_TRUE(original->Push(bags[t]).ok()) << what;
  }

  std::string blob;
  ASSERT_TRUE(original->ExportState(&blob).ok()) << what;
  EXPECT_GT(blob.size(), 16u) << what;

  auto restored = BagStreamDetector::Create(options).MoveValueUnsafe();
  restored->set_thread_pool(pool);
  const Status imported = restored->ImportState(blob);
  ASSERT_TRUE(imported.ok()) << what << ": " << imported.ToString();
  EXPECT_EQ(restored->pushed_count(), original->pushed_count()) << what;

  for (std::size_t t = split; t < bags.size(); ++t) {
    Result<std::optional<StepResult>> a = original->Push(bags[t]);
    Result<std::optional<StepResult>> b = restored->Push(bags[t]);
    ASSERT_TRUE(a.ok() && b.ok()) << what << " step " << t;
    ExpectIdenticalStep(a.ValueOrDie(), b.ValueOrDie(),
                        what + " step " + std::to_string(t));
  }

  // Stronger than score equality: the complete serialized states agree
  // byte for byte after the shared tail.
  std::string end_a, end_b;
  ASSERT_TRUE(original->ExportState(&end_a).ok()) << what;
  ASSERT_TRUE(restored->ExportState(&end_b).ok()) << what;
  EXPECT_EQ(end_a, end_b) << what;
}

TEST(DetectorStateTest, EveryQuantizerRestoresBitwise) {
  for (SignatureMethod method : AllSignatureMethods()) {
    DetectorOptions options = BaseOptions();
    options.signature.method = method;
    RunRestorePin(options, 9, nullptr,
                  std::string("quantizer=") + SignatureMethodName(method));
  }
}

TEST(DetectorStateTest, ApproxSolversRestoreBitwise) {
  for (EmdSolverKind kind : {EmdSolverKind::kSinkhorn, EmdSolverKind::kSliced}) {
    DetectorOptions options = BaseOptions();
    options.emd.kind = kind;
    RunRestorePin(options, 9, nullptr,
                  std::string("emd=") + EmdSolverKindName(kind));
  }
}

TEST(DetectorStateTest, RestoreIsPoolSizeInvariant) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    ThreadPool pool(threads);
    for (EmdSolverKind kind :
         {EmdSolverKind::kExact, EmdSolverKind::kSinkhorn,
          EmdSolverKind::kSliced}) {
      DetectorOptions options = BaseOptions();
      options.emd.kind = kind;
      RunRestorePin(options, 9, &pool,
                    std::string("pool=") + std::to_string(threads) +
                        " emd=" + EmdSolverKindName(kind));
    }
  }
}

TEST(DetectorStateTest, MidWarmupSnapshotRestores) {
  // Export before the window ever fills: counters and a partial ring, no
  // primed table, empty history.
  RunRestorePin(BaseOptions(), 3, nullptr, "mid-warmup");
}

TEST(DetectorStateTest, FreshDetectorSnapshotRestores) {
  RunRestorePin(BaseOptions(), 0, nullptr, "fresh");
}

TEST(DetectorStateTest, CreateFromStateRebuildsConfiguration) {
  const BagSequence bags = JumpStream(16, 9, 33);
  DetectorOptions options = BaseOptions();
  options.emd.kind = EmdSolverKind::kSinkhorn;

  auto original = BagStreamDetector::Create(options).MoveValueUnsafe();
  for (std::size_t t = 0; t < 9; ++t) {
    ASSERT_TRUE(original->Push(bags[t]).ok());
  }
  std::string blob;
  ASSERT_TRUE(original->ExportState(&blob).ok());

  Result<std::unique_ptr<BagStreamDetector>> restored =
      BagStreamDetector::CreateFromState(blob);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  auto detector = restored.MoveValueUnsafe();
  EXPECT_EQ(detector->options().emd.kind, EmdSolverKind::kSinkhorn);
  EXPECT_EQ(detector->options().seed, options.seed);
  EXPECT_EQ(detector->pushed_count(), 9u);

  for (std::size_t t = 9; t < bags.size(); ++t) {
    Result<std::optional<StepResult>> a = original->Push(bags[t]);
    Result<std::optional<StepResult>> b = detector->Push(bags[t]);
    ASSERT_TRUE(a.ok() && b.ok());
    ExpectIdenticalStep(a.ValueOrDie(), b.ValueOrDie(),
                        "CreateFromState step " + std::to_string(t));
  }
}

TEST(DetectorStateTest, ImportRecyclesThroughArena) {
  const BagSequence bags = JumpStream(10, 0, 7);
  auto original = BagStreamDetector::Create(BaseOptions()).MoveValueUnsafe();
  for (const Bag& bag : bags) ASSERT_TRUE(original->Push(bag).ok());
  std::string blob;
  ASSERT_TRUE(original->ExportState(&blob).ok());

  BufferArena arena{BufferArenaOptions{}};
  auto restored = BagStreamDetector::Create(BaseOptions()).MoveValueUnsafe();
  restored->set_buffer_arena(&arena);
  ASSERT_TRUE(restored->ImportState(blob).ok());
  const BufferArenaStats first = arena.stats();
  EXPECT_GT(first.acquires, 0u);
  // A second import re-acquires the staging buffer from the pool.
  ASSERT_TRUE(restored->ImportState(blob).ok());
  const BufferArenaStats second = arena.stats();
  EXPECT_GT(second.pool_hits, first.pool_hits);
}

// ---- Robustness: every malformed blob is a typed error, and the target
// ---- detector keeps producing the untouched twin's results afterwards.

class DetectorStateRobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    bags_ = JumpStream(16, 9, 55);
    auto source = BagStreamDetector::Create(BaseOptions()).MoveValueUnsafe();
    for (std::size_t t = 0; t < 9; ++t) ASSERT_TRUE(source->Push(bags_[t]).ok());
    ASSERT_TRUE(source->ExportState(&blob_).ok());
  }

  // Feeds the remaining bags to `victim` and an untouched twin; a failed
  // import must not have changed what the victim computes.
  void ExpectUnmodified(BagStreamDetector* victim, std::size_t fed) {
    auto twin = BagStreamDetector::Create(BaseOptions()).MoveValueUnsafe();
    for (std::size_t t = 0; t < fed; ++t) ASSERT_TRUE(twin->Push(bags_[t]).ok());
    for (std::size_t t = fed; t < bags_.size(); ++t) {
      Result<std::optional<StepResult>> a = victim->Push(bags_[t]);
      Result<std::optional<StepResult>> b = twin->Push(bags_[t]);
      ASSERT_TRUE(a.ok() && b.ok());
      ExpectIdenticalStep(a.ValueOrDie(), b.ValueOrDie(),
                          "post-failure step " + std::to_string(t));
    }
  }

  BagSequence bags_;
  std::string blob_;
};

TEST_F(DetectorStateRobustnessTest, TruncatedBlobIsIoError) {
  auto victim = BagStreamDetector::Create(BaseOptions()).MoveValueUnsafe();
  for (std::size_t t = 0; t < 5; ++t) ASSERT_TRUE(victim->Push(bags_[t]).ok());
  for (std::size_t len : {std::size_t{0}, std::size_t{7}, std::size_t{40},
                          blob_.size() - 1}) {
    const Status status =
        victim->ImportState(std::string_view(blob_).substr(0, len));
    EXPECT_EQ(status.code(), StatusCode::kIoError)
        << "prefix " << len << ": " << status.ToString();
  }
  ExpectUnmodified(victim.get(), 5);
}

TEST_F(DetectorStateRobustnessTest, FlippedByteIsChecksumError) {
  auto victim = BagStreamDetector::Create(BaseOptions()).MoveValueUnsafe();
  std::string corrupt = blob_;
  corrupt[corrupt.size() / 2] ^= 0x20;
  const Status status = victim->ImportState(corrupt);
  EXPECT_EQ(status.code(), StatusCode::kIoError) << status.ToString();
  ExpectUnmodified(victim.get(), 0);
}

TEST_F(DetectorStateRobustnessTest, UnknownVersionIsNotImplemented) {
  auto victim = BagStreamDetector::Create(BaseOptions()).MoveValueUnsafe();
  std::string future = blob_;
  future[8] = 42;  // Version u32 sits right after the 8-byte magic.
  const Status status = victim->ImportState(future);
  EXPECT_EQ(status.code(), StatusCode::kNotImplemented) << status.ToString();
}

TEST_F(DetectorStateRobustnessTest, SpecMismatchIsInvalid) {
  DetectorOptions other = BaseOptions();
  other.tau_prime = 4;  // Same blob, differently-configured target.
  auto victim = BagStreamDetector::Create(other).MoveValueUnsafe();
  const Status status = victim->ImportState(blob_);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << status.ToString();
  // The message names both specs so the mismatch is actionable.
  EXPECT_NE(status.ToString().find("tau_prime"), std::string::npos);
}

TEST_F(DetectorStateRobustnessTest, WrongBlobKindIsInvalid) {
  auto victim = BagStreamDetector::Create(BaseOptions()).MoveValueUnsafe();
  std::string engine_blob;
  serialize::WireWriter writer(&engine_blob);
  writer.BeginBlob(serialize::BlobKind::kEngineCheckpoint);
  writer.EndBlob();
  const Status status = victim->ImportState(engine_blob);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << status.ToString();
}

TEST(DetectorStateTest, EstimatedStateBytesTracksWindowFill) {
  const BagSequence bags = JumpStream(10, 0, 3);
  auto detector = BagStreamDetector::Create(BaseOptions()).MoveValueUnsafe();
  const std::size_t empty = detector->EstimatedStateBytes();
  for (const Bag& bag : bags) ASSERT_TRUE(detector->Push(bag).ok());
  EXPECT_GT(detector->EstimatedStateBytes(), empty);
}

TEST(DetectorStateTest, InspectDetectorBlobReportsFill) {
  const BagSequence bags = JumpStream(8, 0, 3);
  auto detector = BagStreamDetector::Create(BaseOptions()).MoveValueUnsafe();
  for (const Bag& bag : bags) ASSERT_TRUE(detector->Push(bag).ok());
  std::string blob;
  ASSERT_TRUE(detector->ExportState(&blob).ok());

  Result<serialize::DetectorBlobInfo> info =
      serialize::InspectDetectorBlob(blob);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info.ValueOrDie().window_capacity, 6u);
  // Between pushes the steady-state ring holds tau + tau' - 1 signatures:
  // each scored push slides the oldest out before control returns.
  EXPECT_EQ(info.ValueOrDie().window_fill, 5u);
  EXPECT_EQ(info.ValueOrDie().next_index, 8u);
  EXPECT_EQ(info.ValueOrDie().blob_bytes, blob.size());
  EXPECT_NE(info.ValueOrDie().spec.find("tau=3"), std::string::npos);
}

}  // namespace
}  // namespace bagcpd
