// Engine-level checkpoint contract: ExportStream/ImportStream and
// Checkpoint/Restore continue every stream bitwise-identically — across
// different shard counts on either side of the restore — spilled streams
// transparently rehydrate on their next bag with identical results, and
// every malformed or conflicting import is a typed Status.

#include <sys/stat.h>

#include <cmath>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bagcpd/common/rng.h"
#include "bagcpd/data/gmm.h"
#include "bagcpd/runtime/stream_engine.h"
#include "bagcpd/serialize/checkpoint.h"

namespace bagcpd {
namespace {

DetectorOptions EngineDetector() {
  DetectorOptions options;
  options.tau = 3;
  options.tau_prime = 3;
  options.bootstrap.replicates = 30;
  options.signature.method = SignatureMethod::kKMeans;
  options.signature.k = 3;
  options.seed = 0;  // Engines derive per-stream seeds themselves.
  return options;
}

StreamEngineOptions EngineOptions(std::size_t shards) {
  StreamEngineOptions options;
  options.num_shards = shards;
  options.seed = 5;
  options.detector = EngineDetector();
  return options;
}

BagSequence KeyStream(const std::string& key, std::size_t length) {
  Rng rng(1000 + std::hash<std::string>{}(key) % 97);
  const GaussianMixture before = GaussianMixture::Isotropic({0.0, 0.0}, 0.5);
  const GaussianMixture after = GaussianMixture::Isotropic({4.0, 4.0}, 0.5);
  BagSequence bags;
  for (std::size_t t = 0; t < length; ++t) {
    bags.push_back((t >= length / 2 ? after : before).SampleBag(14, &rng));
  }
  return bags;
}

std::map<std::string, BagSequence> Corpus(std::size_t keys,
                                          std::size_t length) {
  std::map<std::string, BagSequence> corpus;
  for (std::size_t i = 0; i < keys; ++i) {
    const std::string key = "stream-" + std::to_string(i);
    corpus[key] = KeyStream(key, length);
  }
  return corpus;
}

// Round-robin submission, time-major, like live interleaved traffic.
void SubmitRange(StreamEngine* engine,
                 const std::map<std::string, BagSequence>& corpus,
                 std::size_t from, std::size_t to) {
  for (std::size_t t = from; t < to; ++t) {
    for (const auto& [key, bags] : corpus) {
      ASSERT_TRUE(engine->Submit(key, bags[t]).ok()) << key << " t=" << t;
    }
  }
}

std::map<std::string, std::vector<StepResult>> DrainSteps(
    StreamEngine* engine) {
  std::map<std::string, std::vector<StepResult>> steps;
  for (const EngineEvent& event : engine->DrainEvents()) {
    if (event.kind == EngineEvent::Kind::kStep) {
      steps[event.stream_id].push_back(event.step);
    }
  }
  return steps;
}

void AppendSteps(std::map<std::string, std::vector<StepResult>>* into,
                 std::map<std::string, std::vector<StepResult>> tail) {
  for (auto& [key, steps] : tail) {
    auto& dest = (*into)[key];
    dest.insert(dest.end(), steps.begin(), steps.end());
  }
}

void ExpectIdenticalSeries(
    const std::map<std::string, std::vector<StepResult>>& a,
    const std::map<std::string, std::vector<StepResult>>& b,
    const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (const auto& [key, steps] : a) {
    auto it = b.find(key);
    ASSERT_NE(it, b.end()) << what << " key " << key;
    ASSERT_EQ(steps.size(), it->second.size()) << what << " key " << key;
    for (std::size_t i = 0; i < steps.size(); ++i) {
      const StepResult& x = steps[i];
      const StepResult& y = it->second[i];
      EXPECT_EQ(x.time, y.time) << what << " " << key << " step " << i;
      EXPECT_EQ(x.score, y.score) << what << " " << key << " step " << i;
      EXPECT_TRUE((std::isnan(x.xi) && std::isnan(y.xi)) || x.xi == y.xi)
          << what << " " << key << " step " << i;
      EXPECT_EQ(x.alarm, y.alarm) << what << " " << key << " step " << i;
    }
  }
}

std::string MakeSpillDir() {
  std::string tmpl = ::testing::TempDir() + "bagcpd-spill-XXXXXX";
  const char* dir = mkdtemp(tmpl.data());
  EXPECT_NE(dir, nullptr);
  return tmpl;
}

TEST(EngineCheckpointTest, CheckpointRestoreBitwiseAcrossShardCounts) {
  const auto corpus = Corpus(5, 18);

  // The uninterrupted reference run.
  auto reference = StreamEngine::Create(EngineOptions(2)).MoveValueUnsafe();
  SubmitRange(reference.get(), corpus, 0, 18);
  reference->Flush();
  const auto expected = DrainSteps(reference.get());

  const std::size_t shard_pairs[][2] = {{1, 4}, {2, 2}, {4, 1}};
  for (const auto& pair : shard_pairs) {
    const std::string what = "shards " + std::to_string(pair[0]) + "->" +
                             std::to_string(pair[1]);
    auto first = StreamEngine::Create(EngineOptions(pair[0])).MoveValueUnsafe();
    SubmitRange(first.get(), corpus, 0, 9);
    first->Flush();
    auto combined = DrainSteps(first.get());

    std::string blob;
    ASSERT_TRUE(first->Checkpoint(&blob).ok()) << what;

    // A fresh engine — different process in the CI recovery job, different
    // shard count here — continues the tail bitwise.
    auto second =
        StreamEngine::Create(EngineOptions(pair[1])).MoveValueUnsafe();
    const Status restored = second->Restore(blob);
    ASSERT_TRUE(restored.ok()) << what << ": " << restored.ToString();
    EXPECT_EQ(second->restored_count(), corpus.size()) << what;
    EXPECT_EQ(second->live_stream_count(), corpus.size()) << what;
    second->DrainEvents();  // Discard the kRestore events.

    SubmitRange(second.get(), corpus, 9, 18);
    second->Flush();
    AppendSteps(&combined, DrainSteps(second.get()));
    ExpectIdenticalSeries(expected, combined, what);
  }
}

TEST(EngineCheckpointTest, ExportImportSingleStreamRoundTrip) {
  const auto corpus = Corpus(3, 16);

  auto reference = StreamEngine::Create(EngineOptions(2)).MoveValueUnsafe();
  SubmitRange(reference.get(), corpus, 0, 16);
  reference->Flush();
  const auto expected = DrainSteps(reference.get());

  auto first = StreamEngine::Create(EngineOptions(3)).MoveValueUnsafe();
  SubmitRange(first.get(), corpus, 0, 10);
  first->Flush();
  auto combined = DrainSteps(first.get());

  std::string blob;
  ASSERT_TRUE(first->ExportStream("stream-1", &blob).ok());

  // The blob is self-describing: key, profile, and resume position.
  Result<serialize::StreamBlobInfo> info = serialize::InspectStreamBlob(blob);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info.ValueOrDie().key, "stream-1");
  EXPECT_EQ(info.ValueOrDie().profile, kDefaultProfileName);
  EXPECT_EQ(info.ValueOrDie().detector.next_index, 10u);

  auto second = StreamEngine::Create(EngineOptions(1)).MoveValueUnsafe();
  ASSERT_TRUE(second->ImportStream("stream-1", blob).ok());
  EXPECT_EQ(second->restored_count(), 1u);
  second->DrainEvents();
  for (std::size_t t = 10; t < 16; ++t) {
    ASSERT_TRUE(second->Submit("stream-1", corpus.at("stream-1")[t]).ok());
    ASSERT_TRUE(first->Submit("stream-0", corpus.at("stream-0")[t]).ok());
    ASSERT_TRUE(first->Submit("stream-2", corpus.at("stream-2")[t]).ok());
    ASSERT_TRUE(first->Submit("stream-1", corpus.at("stream-1")[t]).ok());
  }
  first->Flush();
  second->Flush();
  AppendSteps(&combined, DrainSteps(first.get()));
  // The imported copy's tail must equal the original's tail bitwise.
  const auto imported_tail = DrainSteps(second.get());
  ASSERT_EQ(imported_tail.size(), 1u);
  ExpectIdenticalSeries(expected, combined, "original engines");
  std::map<std::string, std::vector<StepResult>> expected_tail;
  const auto& full = expected.at("stream-1");
  const auto& prefix_done = combined.at("stream-1").size();
  (void)prefix_done;
  expected_tail["stream-1"] =
      std::vector<StepResult>(full.end() - imported_tail.at("stream-1").size(),
                              full.end());
  ExpectIdenticalSeries(expected_tail, imported_tail, "imported tail");
}

TEST(EngineCheckpointTest, CheckpointEventsCarryBlobSizes) {
  const auto corpus = Corpus(2, 10);
  auto engine = StreamEngine::Create(EngineOptions(2)).MoveValueUnsafe();
  SubmitRange(engine.get(), corpus, 0, 10);
  engine->Flush();
  engine->DrainEvents();

  std::string blob;
  ASSERT_TRUE(engine->ExportStream("stream-0", &blob).ok());
  bool saw_checkpoint = false;
  for (const EngineEvent& event : engine->DrainEvents()) {
    if (event.kind == EngineEvent::Kind::kCheckpoint) {
      saw_checkpoint = true;
      EXPECT_EQ(event.stream_id, "stream-0");
      EXPECT_EQ(event.profile, kDefaultProfileName);
      EXPECT_GT(event.blob_bytes, 0u);
    }
  }
  EXPECT_TRUE(saw_checkpoint);

  // The legacy drains predate checkpoint events and must stay step/error
  // only: a second export followed by the legacy pair sees neither kind.
  ASSERT_TRUE(engine->ExportStream("stream-1", &blob).ok());
  EXPECT_TRUE(engine->Drain().empty());
  EXPECT_TRUE(engine->DrainErrors().empty());
}

TEST(EngineCheckpointTest, ImportConflictsAreTypedErrors) {
  const auto corpus = Corpus(2, 8);
  auto source = StreamEngine::Create(EngineOptions(1)).MoveValueUnsafe();
  SubmitRange(source.get(), corpus, 0, 8);
  source->Flush();
  std::string blob;
  ASSERT_TRUE(source->ExportStream("stream-0", &blob).ok());

  auto target = StreamEngine::Create(EngineOptions(1)).MoveValueUnsafe();
  // Key mismatch: the blob names stream-0.
  EXPECT_EQ(target->ImportStream("stream-9", blob).code(),
            StatusCode::kInvalidArgument);
  // Import into an already-bound key.
  ASSERT_TRUE(target->Submit("stream-0", corpus.at("stream-0")[0]).ok());
  target->Flush();
  EXPECT_EQ(target->ImportStream("stream-0", blob).code(),
            StatusCode::kInvalidArgument);
  // Truncated / corrupt blobs are IO errors, not crashes.
  EXPECT_EQ(target
                ->ImportStream("stream-0",
                               std::string_view(blob).substr(0, blob.size() / 2))
                .code(),
            StatusCode::kIoError);
  // Unknown key on export.
  std::string out;
  EXPECT_EQ(target->ExportStream("no-such-stream", &out).code(),
            StatusCode::kInvalidArgument);
}

TEST(EngineCheckpointTest, RestoreRejectsSeedAndOptionMismatches) {
  const auto corpus = Corpus(2, 8);
  auto source = StreamEngine::Create(EngineOptions(2)).MoveValueUnsafe();
  SubmitRange(source.get(), corpus, 0, 8);
  source->Flush();
  std::string blob;
  ASSERT_TRUE(source->Checkpoint(&blob).ok());

  // Engine seed mismatch: per-stream seeds would re-derive differently, so
  // bitwise continuation is impossible and the restore is refused up front.
  StreamEngineOptions other_seed = EngineOptions(2);
  other_seed.seed = 6;
  auto wrong_seed = StreamEngine::Create(other_seed).MoveValueUnsafe();
  EXPECT_EQ(wrong_seed->Restore(blob).code(), StatusCode::kInvalidArgument);

  // Same seed but differently-configured default profile: the per-stream
  // options-spec gate refuses each stream.
  StreamEngineOptions other_detector = EngineOptions(2);
  other_detector.detector.tau = 4;
  auto wrong_detector = StreamEngine::Create(other_detector).MoveValueUnsafe();
  EXPECT_EQ(wrong_detector->Restore(blob).code(),
            StatusCode::kInvalidArgument);

  // A detector blob is not an engine checkpoint.
  std::string stream_blob;
  ASSERT_TRUE(source->ExportStream("stream-0", &stream_blob).ok());
  EXPECT_EQ(wrong_seed->Restore(stream_blob).code(),
            StatusCode::kInvalidArgument);
}

TEST(EngineCheckpointTest, SpillThenTouchRoundTrip) {
  // More keys than the widest shard count below: the budget LRU never spills
  // the stream whose bag triggered the check, so a shard must own at least
  // two streams to spill at all.
  const auto corpus = Corpus(6, 14);

  auto reference = StreamEngine::Create(EngineOptions(2)).MoveValueUnsafe();
  SubmitRange(reference.get(), corpus, 0, 14);
  reference->Flush();
  const auto expected = DrainSteps(reference.get());

  for (std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    StreamEngineOptions options = EngineOptions(shards);
    options.spill_directory = MakeSpillDir();
    options.spill_resident_bytes = 1;  // Force the budget LRU constantly.
    auto engine = StreamEngine::Create(options).MoveValueUnsafe();
    SubmitRange(engine.get(), corpus, 0, 14);
    engine->Flush();

    // Every stream went cold and came back at least once, and the spill
    // churn never changed a single score bit.
    EXPECT_GT(engine->spilled_count(), 0u) << shards << " shards";
    EXPECT_GT(engine->restored_count(), 0u) << shards << " shards";
    std::map<std::string, std::vector<StepResult>> steps;
    bool saw_spill = false, saw_rehydrate = false;
    for (const EngineEvent& event : engine->DrainEvents()) {
      switch (event.kind) {
        case EngineEvent::Kind::kStep:
          steps[event.stream_id].push_back(event.step);
          break;
        case EngineEvent::Kind::kCheckpoint:
          saw_spill = true;
          EXPECT_GT(event.blob_bytes, 0u);
          break;
        case EngineEvent::Kind::kRestore:
          saw_rehydrate = true;
          EXPECT_GT(event.blob_bytes, 0u);
          break;
        default:
          break;
      }
    }
    EXPECT_TRUE(saw_spill) << shards << " shards";
    EXPECT_TRUE(saw_rehydrate) << shards << " shards";
    ExpectIdenticalSeries(expected, steps,
                          "spill @ " + std::to_string(shards) + " shards");
    // Rehydration stages file bytes through the shard arenas.
    EXPECT_GT(engine->arena_stats().pool_hits, 0u);
  }
}

TEST(EngineCheckpointTest, CheckpointCoversSpilledStreams) {
  const auto corpus = Corpus(3, 12);

  auto reference = StreamEngine::Create(EngineOptions(1)).MoveValueUnsafe();
  SubmitRange(reference.get(), corpus, 0, 12);
  reference->Flush();
  const auto expected = DrainSteps(reference.get());

  StreamEngineOptions options = EngineOptions(2);
  options.spill_directory = MakeSpillDir();
  options.spill_resident_bytes = 1;
  auto spilling = StreamEngine::Create(options).MoveValueUnsafe();
  SubmitRange(spilling.get(), corpus, 0, 7);
  spilling->Flush();
  auto combined = DrainSteps(spilling.get());

  // At this point most streams sit in spill files, not memory; the engine
  // checkpoint must carry them all the same.
  std::string blob;
  ASSERT_TRUE(spilling->Checkpoint(&blob).ok());
  Result<serialize::CheckpointInfo> info = serialize::InspectCheckpoint(blob);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info.ValueOrDie().engine_seed, 5u);
  EXPECT_EQ(info.ValueOrDie().streams.size(), corpus.size());

  // Restore into a plain engine with no spilling at all.
  auto second = StreamEngine::Create(EngineOptions(2)).MoveValueUnsafe();
  ASSERT_TRUE(second->Restore(blob).ok());
  second->DrainEvents();
  SubmitRange(second.get(), corpus, 7, 12);
  second->Flush();
  AppendSteps(&combined, DrainSteps(second.get()));
  ExpectIdenticalSeries(expected, combined, "spilled checkpoint");
}

TEST(EngineCheckpointTest, ResidentBytesTrackSpill) {
  const auto corpus = Corpus(2, 10);
  StreamEngineOptions options = EngineOptions(1);
  options.spill_directory = MakeSpillDir();
  auto engine = StreamEngine::Create(options).MoveValueUnsafe();
  SubmitRange(engine.get(), corpus, 0, 10);
  engine->Flush();
  // No budget: both streams stay resident and accounted.
  EXPECT_EQ(engine->spilled_count(), 0u);
  EXPECT_GT(engine->resident_state_bytes(), 0u);
  EXPECT_EQ(engine->live_stream_count(), 2u);
}

}  // namespace
}  // namespace bagcpd
