// Wire-container contract: primitives round-trip exactly, unknown sections
// are skipped, and every corruption mode — truncation, a flipped byte, an
// unsupported format version, a kind mismatch — is a typed recoverable
// Status, never UB or a crash.

#include <cmath>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "bagcpd/serialize/wire.h"

namespace bagcpd {
namespace serialize {
namespace {

std::string SampleBlob() {
  std::string blob;
  WireWriter writer(&blob);
  writer.BeginBlob(BlobKind::kDetector);
  writer.BeginSection(7);
  writer.PutU8(0xAB);
  writer.PutU32(0xDEADBEEFu);
  writer.PutU64(0x0123456789ABCDEFull);
  writer.PutF64(-1234.5e-6);
  const double values[] = {0.0, -0.0, 1.5, 1e300};
  writer.PutF64Array(values, 4);
  writer.PutString("hello wire");
  writer.EndSection();
  writer.BeginSection(9);
  writer.PutU32(42);
  writer.EndSection();
  writer.EndBlob();
  return blob;
}

TEST(WireTest, PrimitivesRoundTrip) {
  const std::string blob = SampleBlob();
  Result<WireReader> opened = OpenBlob(blob, BlobKind::kDetector);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  WireReader reader = opened.ValueOrDie();

  std::uint32_t tag = 0;
  std::string_view payload;
  ASSERT_TRUE(reader.NextSection(&tag, &payload).ok());
  EXPECT_EQ(tag, 7u);
  WireReader section(payload);
  std::uint8_t u8 = 0;
  std::uint32_t u32 = 0;
  std::uint64_t u64 = 0;
  double f64 = 0.0;
  ASSERT_TRUE(section.ReadU8(&u8).ok());
  ASSERT_TRUE(section.ReadU32(&u32).ok());
  ASSERT_TRUE(section.ReadU64(&u64).ok());
  ASSERT_TRUE(section.ReadF64(&f64).ok());
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(f64, -1234.5e-6);
  double values[4] = {};
  ASSERT_TRUE(section.ReadF64Array(values, 4).ok());
  EXPECT_EQ(values[0], 0.0);
  EXPECT_TRUE(std::signbit(values[1]));
  EXPECT_EQ(values[2], 1.5);
  EXPECT_EQ(values[3], 1e300);
  std::string_view text;
  ASSERT_TRUE(section.ReadString(&text).ok());
  EXPECT_EQ(text, "hello wire");
  EXPECT_TRUE(section.AtEnd());

  ASSERT_TRUE(reader.NextSection(&tag, &payload).ok());
  EXPECT_EQ(tag, 9u);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(WireTest, PeekBlobKind) {
  const std::string blob = SampleBlob();
  Result<BlobKind> kind = PeekBlobKind(blob);
  ASSERT_TRUE(kind.ok());
  EXPECT_EQ(kind.ValueOrDie(), BlobKind::kDetector);
}

TEST(WireTest, KindMismatchIsInvalid) {
  const std::string blob = SampleBlob();
  const Status status = OpenBlob(blob, BlobKind::kEngineStream).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << status.ToString();
}

TEST(WireTest, EveryTruncationIsIoError) {
  const std::string blob = SampleBlob();
  // Chop the blob at every possible length: each prefix must fail with a
  // typed IoError (the CRC footer is gone or wrong, or the container is
  // smaller than its minimal size) and never crash.
  for (std::size_t len = 0; len < blob.size(); ++len) {
    const Status status =
        OpenBlob(std::string_view(blob).substr(0, len), BlobKind::kDetector)
            .status();
    EXPECT_EQ(status.code(), StatusCode::kIoError)
        << "prefix of " << len << ": " << status.ToString();
  }
}

TEST(WireTest, EveryFlippedByteIsDetected) {
  const std::string blob = SampleBlob();
  for (std::size_t i = 0; i < blob.size(); ++i) {
    std::string corrupt = blob;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x40);
    const Status status = OpenBlob(corrupt, BlobKind::kDetector).status();
    // A flip lands on the magic, the version, the kind, the body, or the CRC
    // itself — all surface as a typed error, mostly the checksum.
    EXPECT_FALSE(status.ok()) << "flipped byte " << i;
    EXPECT_TRUE(status.code() == StatusCode::kIoError ||
                status.code() == StatusCode::kNotImplemented ||
                status.code() == StatusCode::kInvalidArgument)
        << "flipped byte " << i << ": " << status.ToString();
  }
}

TEST(WireTest, UnknownFormatVersionIsNotImplemented) {
  std::string blob = SampleBlob();
  // The version field sits right after the 8-byte magic (little-endian u32).
  blob[8] = 99;
  const Status status = OpenBlob(blob, BlobKind::kDetector).status();
  EXPECT_EQ(status.code(), StatusCode::kNotImplemented) << status.ToString();
}

TEST(WireTest, UnknownSectionsAreSkippable) {
  std::string blob;
  WireWriter writer(&blob);
  writer.BeginBlob(BlobKind::kEngineStream);
  writer.BeginSection(1000);  // From a hypothetical future format revision.
  writer.PutString("future payload");
  writer.EndSection();
  writer.BeginSection(3);
  writer.PutU32(5);
  writer.EndSection();
  writer.EndBlob();

  Result<WireReader> opened = OpenBlob(blob, BlobKind::kEngineStream);
  ASSERT_TRUE(opened.ok());
  WireReader reader = opened.ValueOrDie();
  std::uint32_t tag = 0;
  std::string_view payload;
  std::vector<std::uint32_t> tags;
  while (!reader.AtEnd()) {
    ASSERT_TRUE(reader.NextSection(&tag, &payload).ok());
    tags.push_back(tag);
  }
  EXPECT_EQ(tags, (std::vector<std::uint32_t>{1000, 3}));
}

TEST(WireTest, CrcMatchesKnownVector) {
  // The classic IEEE CRC-32 check value: crc32("123456789") = 0xCBF43926.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
}

}  // namespace
}  // namespace serialize
}  // namespace bagcpd
