#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "bagcpd/io/csv.h"
#include "bagcpd/io/table.h"

namespace bagcpd {
namespace {

std::string ReadAll(const std::string& path) {
  std::ifstream file(path);
  std::ostringstream os;
  os << file.rdbuf();
  return os.str();
}

TEST(CsvTest, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "/bagcpd_csv_test.csv";
  Status st = WriteCsv(path, {"a", "b"}, {{"1", "2"}, {"3", "4"}});
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(ReadAll(path), "a,b\n1,2\n3,4\n");
  std::remove(path.c_str());
}

TEST(CsvTest, EscapesSpecialCharacters) {
  const std::string path = ::testing::TempDir() + "/bagcpd_csv_escape.csv";
  ASSERT_TRUE(WriteCsv(path, {"x"}, {{"has,comma"}, {"has\"quote"}}).ok());
  EXPECT_EQ(ReadAll(path), "x\n\"has,comma\"\n\"has\"\"quote\"\n");
  std::remove(path.c_str());
}

TEST(CsvTest, RejectsRaggedRows) {
  const std::string path = ::testing::TempDir() + "/bagcpd_csv_ragged.csv";
  EXPECT_FALSE(WriteCsv(path, {"a", "b"}, {{"only-one"}}).ok());
  std::remove(path.c_str());
}

TEST(CsvTest, FailsOnUnwritablePath) {
  EXPECT_FALSE(WriteCsv("/nonexistent-dir/foo.csv", {"a"}, {}).ok());
}

TEST(CsvTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(1.5, 2), "1.50");
  EXPECT_EQ(FormatDouble(-0.125, 3), "-0.125");
}

TEST(TableTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"x", "123456"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("123456"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  // Header row ends aligned: "value" column starts at same offset in rows.
  std::istringstream is(out);
  std::string header_line, sep, row1;
  std::getline(is, header_line);
  std::getline(is, sep);
  std::getline(is, row1);
  EXPECT_EQ(header_line.find("value"), row1.find("1"));
}

TEST(TableTest, EmptyTableStillPrintsHeader) {
  TablePrinter table({"only"});
  EXPECT_NE(table.ToString().find("only"), std::string::npos);
}

}  // namespace
}  // namespace bagcpd
