#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "bagcpd/io/csv.h"
#include "bagcpd/io/table.h"

namespace bagcpd {
namespace {

std::string ReadAll(const std::string& path) {
  std::ifstream file(path);
  std::ostringstream os;
  os << file.rdbuf();
  return os.str();
}

TEST(CsvTest, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "/bagcpd_csv_test.csv";
  Status st = WriteCsv(path, {"a", "b"}, {{"1", "2"}, {"3", "4"}});
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(ReadAll(path), "a,b\n1,2\n3,4\n");
  std::remove(path.c_str());
}

TEST(CsvTest, EscapesSpecialCharacters) {
  const std::string path = ::testing::TempDir() + "/bagcpd_csv_escape.csv";
  ASSERT_TRUE(WriteCsv(path, {"x"}, {{"has,comma"}, {"has\"quote"}}).ok());
  EXPECT_EQ(ReadAll(path), "x\n\"has,comma\"\n\"has\"\"quote\"\n");
  std::remove(path.c_str());
}

TEST(CsvTest, RejectsRaggedRows) {
  const std::string path = ::testing::TempDir() + "/bagcpd_csv_ragged.csv";
  EXPECT_FALSE(WriteCsv(path, {"a", "b"}, {{"only-one"}}).ok());
  std::remove(path.c_str());
}

TEST(CsvTest, FailsOnUnwritablePath) {
  EXPECT_FALSE(WriteCsv("/nonexistent-dir/foo.csv", {"a"}, {}).ok());
}

TEST(CsvTest, ReadRoundTripsQuotedFields) {
  const std::string path = ::testing::TempDir() + "/bagcpd_csv_read_rt.csv";
  const std::vector<std::string> header = {"name", "note"};
  const std::vector<std::vector<std::string>> rows = {
      {"plain", "no quoting needed"},
      {"has,comma", "a\"quote"},
      {"multi\nline", "trailing space "},
      {"", "empty first field"},
  };
  ASSERT_TRUE(WriteCsv(path, header, rows).ok());
  Result<CsvData> read = ReadCsv(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->header, header);
  EXPECT_EQ(read->rows, rows);
  std::remove(path.c_str());
}

TEST(CsvTest, ReadAcceptsCrlfAndMissingFinalNewline) {
  const std::string path = ::testing::TempDir() + "/bagcpd_csv_crlf.csv";
  {
    std::ofstream out(path, std::ios::binary);
    out << "a,b\r\n1,2\r\n3,4";  // CRLF endings, no trailing newline.
  }
  Result<CsvData> read = ReadCsv(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->header, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(read->rows.size(), 2u);
  EXPECT_EQ(read->rows[1], (std::vector<std::string>{"3", "4"}));
  std::remove(path.c_str());
}

TEST(CsvTest, ReadDoesNotInventPhantomRows) {
  const std::string path = ::testing::TempDir() + "/bagcpd_csv_tail.csv";
  {
    std::ofstream out(path, std::ios::binary);
    out << "a\nx\n";  // Trailing newline must not add an empty row.
  }
  Result<CsvData> read = ReadCsv(path);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->rows.size(), 1u);
  std::remove(path.c_str());
}

TEST(CsvTest, ReadRejectsMalformedInput) {
  EXPECT_FALSE(ReadCsv("/nonexistent-dir/foo.csv").ok());

  const std::string path = ::testing::TempDir() + "/bagcpd_csv_bad.csv";
  const auto write = [&path](const std::string& body) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << body;
  };

  write("a,b\nonly-one\n");  // Row narrower than the header.
  EXPECT_FALSE(ReadCsv(path).ok());
  write("a\n1,2\n");  // Row wider than the header.
  EXPECT_FALSE(ReadCsv(path).ok());
  write("a\n\"unterminated\n");  // Quote never closed.
  EXPECT_FALSE(ReadCsv(path).ok());
  write("a\nhe\"llo\n");  // Quote inside an unquoted field.
  EXPECT_FALSE(ReadCsv(path).ok());
  write("");  // No header at all.
  EXPECT_FALSE(ReadCsv(path).ok());
  std::remove(path.c_str());
}

TEST(CsvTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(1.5, 2), "1.50");
  EXPECT_EQ(FormatDouble(-0.125, 3), "-0.125");
}

TEST(TableTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"x", "123456"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("123456"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  // Header row ends aligned: "value" column starts at same offset in rows.
  std::istringstream is(out);
  std::string header_line, sep, row1;
  std::getline(is, header_line);
  std::getline(is, sep);
  std::getline(is, row1);
  EXPECT_EQ(header_line.find("value"), row1.find("1"));
}

TEST(TableTest, EmptyTableStillPrintsHeader) {
  TablePrinter table({"only"});
  EXPECT_NE(table.ToString().find("only"), std::string::npos);
}

}  // namespace
}  // namespace bagcpd
