#include "bagcpd/graph/enron_simulator.h"

#include <gtest/gtest.h>

#include "bagcpd/graph/features.h"

namespace bagcpd {
namespace {

EnronSimulatorOptions FastOptions() {
  EnronSimulatorOptions options;
  options.seed = 11;
  options.weeks = 100;
  options.node_rate = 25.0;
  options.edge_density = 0.2;
  return options;
}

TEST(EnronSimulatorTest, ProducesWeeklyGraphs) {
  EnronStream stream = SimulateEnronStream(FastOptions()).ValueOrDie();
  EXPECT_EQ(stream.weekly_graphs.size(), 100u);
  for (const BipartiteGraph& g : stream.weekly_graphs) {
    EXPECT_GT(g.num_sources(), 0u);
    EXPECT_GT(g.num_edges(), 0u);
  }
}

TEST(EnronSimulatorTest, EventsAreWithinHorizon) {
  EnronSimulatorOptions options = FastOptions();
  options.weeks = 60;
  EnronStream stream = SimulateEnronStream(options).ValueOrDie();
  for (const EnronEvent& e : stream.events) {
    EXPECT_LT(e.week, 60u);
    EXPECT_FALSE(e.label.empty());
  }
  // Later events (weeks >= 60) must have been dropped.
  EXPECT_LT(stream.events.size(), DefaultEnronEvents().size());
}

TEST(EnronSimulatorTest, TrafficSurgeIsVisibleInTotalWeight) {
  EnronStream stream = SimulateEnronStream(FastOptions()).ValueOrDie();
  // Find the bankruptcy surge at week 74 (magnitude 3.0).
  double before = 0.0, during = 0.0;
  for (std::size_t w = 68; w < 72; ++w) {
    before += stream.weekly_graphs[w].TotalWeight();
  }
  for (std::size_t w = 74; w < 78; ++w) {
    during += stream.weekly_graphs[w].TotalWeight();
  }
  EXPECT_GT(during, 1.8 * before);
}

TEST(EnronSimulatorTest, HeadcountChangeShrinksNodeCounts) {
  EnronStream stream = SimulateEnronStream(FastOptions()).ValueOrDie();
  // Mass layoffs at week 82 (magnitude 0.5).
  double before = 0.0, during = 0.0;
  for (std::size_t w = 78; w < 82; ++w) {
    before += static_cast<double>(stream.weekly_graphs[w].num_sources());
  }
  for (std::size_t w = 82; w < 86; ++w) {
    during += static_cast<double>(stream.weekly_graphs[w].num_sources());
  }
  EXPECT_LT(during, 0.8 * before);
}

TEST(EnronSimulatorTest, FeaturesExtractableEveryWeek) {
  EnronSimulatorOptions options = FastOptions();
  options.weeks = 20;
  EnronStream stream = SimulateEnronStream(options).ValueOrDie();
  for (const BipartiteGraph& g : stream.weekly_graphs) {
    auto features = ExtractAllGraphFeatures(g);
    ASSERT_TRUE(features.ok());
    for (const Bag& bag : features.ValueOrDie()) {
      EXPECT_FALSE(bag.empty());
    }
  }
}

TEST(EnronSimulatorTest, RejectsTooShortHorizon) {
  EnronSimulatorOptions options = FastOptions();
  options.weeks = 5;
  EXPECT_FALSE(SimulateEnronStream(options).ok());
}

TEST(EnronSimulatorTest, EventKindNames) {
  EXPECT_STREQ(EnronEventKindName(EnronEventKind::kTrafficSurge),
               "traffic_surge");
  EXPECT_STREQ(EnronEventKindName(EnronEventKind::kCommunitySwap),
               "community_swap");
}

}  // namespace
}  // namespace bagcpd
