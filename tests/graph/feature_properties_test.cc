// Property-based tests of the seven graph features over randomly generated
// community graphs: conservation laws that must hold for every bipartite
// graph (degree handshake, strength/weight conservation, second-degree
// bounds), checked across a parameter sweep of sizes and densities.

#include <numeric>

#include <gtest/gtest.h>

#include "bagcpd/common/rng.h"
#include "bagcpd/graph/features.h"
#include "bagcpd/graph/generators.h"

namespace bagcpd {
namespace {

struct GraphCase {
  std::uint64_t seed;
  double node_rate;
  double density;
};

class GraphFeaturePropertyTest : public ::testing::TestWithParam<GraphCase> {
 protected:
  BipartiteGraph MakeGraph() {
    const GraphCase& gc = GetParam();
    CommunityGraphParams params;
    params.source_rate = gc.node_rate;
    params.destination_rate = gc.node_rate;
    params.edge_density = gc.density;
    Rng rng(gc.seed);
    return SampleCommunityGraph(params, &rng).ValueOrDie();
  }

  static double Sum(const Bag& bag) {
    double acc = 0.0;
    for (const Point& p : bag) acc += p[0];
    return acc;
  }
};

TEST_P(GraphFeaturePropertyTest, DegreeHandshake) {
  BipartiteGraph g = MakeGraph();
  const Bag src = ExtractGraphFeature(g, GraphFeature::kSourceDegree)
                      .ValueOrDie();
  const Bag dst = ExtractGraphFeature(g, GraphFeature::kDestinationDegree)
                      .ValueOrDie();
  // Both degree totals count every edge exactly once.
  EXPECT_DOUBLE_EQ(Sum(src), static_cast<double>(g.num_edges()));
  EXPECT_DOUBLE_EQ(Sum(dst), static_cast<double>(g.num_edges()));
}

TEST_P(GraphFeaturePropertyTest, StrengthConservation) {
  BipartiteGraph g = MakeGraph();
  const Bag src = ExtractGraphFeature(g, GraphFeature::kSourceStrength)
                      .ValueOrDie();
  const Bag dst = ExtractGraphFeature(g, GraphFeature::kDestinationStrength)
                      .ValueOrDie();
  const Bag edges =
      ExtractGraphFeature(g, GraphFeature::kEdgeWeight).ValueOrDie();
  // Every unit of weight is emitted once, received once, and listed once.
  EXPECT_NEAR(Sum(src), g.TotalWeight(), 1e-9);
  EXPECT_NEAR(Sum(dst), g.TotalWeight(), 1e-9);
  EXPECT_NEAR(Sum(edges), g.TotalWeight(), 1e-9);
}

TEST_P(GraphFeaturePropertyTest, BagSizesMatchNodeAndEdgeCounts) {
  BipartiteGraph g = MakeGraph();
  auto all = ExtractAllGraphFeatures(g).ValueOrDie();
  EXPECT_EQ(all[0].size(), g.num_sources());
  EXPECT_EQ(all[1].size(), g.num_destinations());
  EXPECT_EQ(all[2].size(), g.num_sources());
  EXPECT_EQ(all[3].size(), g.num_destinations());
  EXPECT_EQ(all[4].size(), g.num_sources());
  EXPECT_EQ(all[5].size(), g.num_destinations());
  EXPECT_EQ(all[6].size(), g.num_edges());
}

TEST_P(GraphFeaturePropertyTest, SecondDegreeBounds) {
  BipartiteGraph g = MakeGraph();
  const Bag src2 = ExtractGraphFeature(g, GraphFeature::kSourceSecondDegree)
                       .ValueOrDie();
  const Bag dst2 =
      ExtractGraphFeature(g, GraphFeature::kDestinationSecondDegree)
          .ValueOrDie();
  // A node can reach at most all *other* nodes on its side.
  for (const Point& p : src2) {
    EXPECT_GE(p[0], 0.0);
    EXPECT_LE(p[0], static_cast<double>(g.num_sources() - 1));
  }
  for (const Point& p : dst2) {
    EXPECT_GE(p[0], 0.0);
    EXPECT_LE(p[0], static_cast<double>(g.num_destinations() - 1));
  }
}

TEST_P(GraphFeaturePropertyTest, IsolatedNodesHaveZeroEverywhere) {
  BipartiteGraph g = MakeGraph();
  const Bag deg = ExtractGraphFeature(g, GraphFeature::kSourceDegree)
                      .ValueOrDie();
  const Bag strength = ExtractGraphFeature(g, GraphFeature::kSourceStrength)
                           .ValueOrDie();
  const Bag second = ExtractGraphFeature(g, GraphFeature::kSourceSecondDegree)
                         .ValueOrDie();
  for (std::size_t s = 0; s < g.num_sources(); ++s) {
    if (deg[s][0] == 0.0) {
      EXPECT_DOUBLE_EQ(strength[s][0], 0.0);
      EXPECT_DOUBLE_EQ(second[s][0], 0.0);
    }
  }
}

TEST_P(GraphFeaturePropertyTest, WeightsArePositive) {
  BipartiteGraph g = MakeGraph();
  const Bag edges =
      ExtractGraphFeature(g, GraphFeature::kEdgeWeight).ValueOrDie();
  for (const Point& p : edges) EXPECT_GT(p[0], 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, GraphFeaturePropertyTest,
    ::testing::Values(GraphCase{1, 10.0, 1.0}, GraphCase{2, 20.0, 0.5},
                      GraphCase{3, 40.0, 0.2}, GraphCase{4, 60.0, 0.1},
                      GraphCase{5, 15.0, 0.8}, GraphCase{6, 30.0, 0.05}));

}  // namespace
}  // namespace bagcpd
