#include "bagcpd/graph/generators.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

namespace bagcpd {
namespace {

BipartiteStreamOptions FastOptions() {
  BipartiteStreamOptions options;
  options.seed = 7;
  options.node_rate = 30.0;    // Small graphs for speed.
  options.edge_density = 0.5;
  options.length_scale = 0.25;  // Blocks of 5 instead of 20.
  return options;
}

TEST(CommunityGraphTest, SamplesRequestedShape) {
  CommunityGraphParams params;
  params.source_rate = 50.0;
  params.destination_rate = 40.0;
  Rng rng(1);
  BipartiteGraph g = SampleCommunityGraph(params, &rng).ValueOrDie();
  EXPECT_GT(g.num_sources(), 25u);
  EXPECT_GT(g.num_destinations(), 20u);
  EXPECT_GT(g.num_edges(), 0u);
}

TEST(CommunityGraphTest, NodeCountsVaryAcrossDraws) {
  CommunityGraphParams params;
  params.source_rate = 50.0;
  params.destination_rate = 50.0;
  Rng rng(2);
  std::set<std::size_t> source_counts;
  for (int i = 0; i < 10; ++i) {
    BipartiteGraph g = SampleCommunityGraph(params, &rng).ValueOrDie();
    source_counts.insert(g.num_sources());
  }
  EXPECT_GT(source_counts.size(), 3u);
}

TEST(CommunityGraphTest, CommunityRatesShowInBlockWeights) {
  // lambda = {{10, 1}, {1, 10}}: diagonal communities should carry much more
  // weight than off-diagonal ones.
  CommunityGraphParams params;
  params.lambda = {{10.0, 1.0}, {1.0, 10.0}};
  params.source_rate = 60.0;
  params.destination_rate = 60.0;
  Rng rng(3);
  BipartiteGraph g = SampleCommunityGraph(params, &rng).ValueOrDie();
  const std::size_t sc = g.num_sources() / 2;
  const std::size_t dc = g.num_destinations() / 2;
  double diag = 0.0, off = 0.0;
  for (const BipartiteEdge& e : g.Edges()) {
    const bool s0 = e.source < sc;
    const bool d0 = e.destination < dc;
    if (s0 == d0) {
      diag += e.weight;
    } else {
      off += e.weight;
    }
  }
  EXPECT_GT(diag, 3.0 * off);
}

TEST(CommunityGraphTest, FixedTotalWeightRespected) {
  CommunityGraphParams params;
  params.fixed_total_weight = 5000.0;
  params.source_rate = 40.0;
  params.destination_rate = 40.0;
  Rng rng(4);
  BipartiteGraph g = SampleCommunityGraph(params, &rng).ValueOrDie();
  EXPECT_NEAR(g.TotalWeight(), 5000.0, 4.0);  // Rounding of 4 communities.
}

TEST(CommunityGraphTest, RejectsBadLambda) {
  CommunityGraphParams params;
  params.lambda = {};
  Rng rng(5);
  EXPECT_FALSE(SampleCommunityGraph(params, &rng).ok());
  params.lambda = {{1.0, 2.0}, {3.0}};
  EXPECT_FALSE(SampleCommunityGraph(params, &rng).ok());
  params.lambda = {{1.0, 2.0, 3.0}, {1.0, 2.0, 3.0}, {1.0, 2.0, 3.0}};
  EXPECT_FALSE(SampleCommunityGraph(params, &rng).ok());  // 3x3 unsupported.
}

TEST(BipartiteDatasetsTest, Dataset1ChangePointsAtBlockBoundaries) {
  BipartiteStream s = MakeBipartiteDataset1(FastOptions()).ValueOrDie();
  // block = 5 => elevated blocks [11,15], [16,20], ..., returning to baseline
  // at 36 (1-based). 0-based changes: 10, 15, 20, 25, 30, 35.
  EXPECT_EQ(s.graphs.size(), 50u);
  EXPECT_EQ(s.change_points,
            (std::vector<std::size_t>{10, 15, 20, 25, 30, 35}));
}

TEST(BipartiteDatasetsTest, Dataset1TrafficActuallyRises) {
  BipartiteStreamOptions options = FastOptions();
  options.edge_density = 1.0;
  BipartiteStream s = MakeBipartiteDataset1(options).ValueOrDie();
  // Baseline block [0, 10) vs the strongest block [30, 35): mean total weight
  // per graph should grow roughly by the lambda ratio 6.
  double base = 0.0, peak = 0.0;
  for (std::size_t t = 0; t < 10; ++t) base += s.graphs[t].TotalWeight();
  base /= 10.0;
  for (std::size_t t = 30; t < 35; ++t) peak += s.graphs[t].TotalWeight();
  peak /= 5.0;
  EXPECT_GT(peak, 3.0 * base);
}

TEST(BipartiteDatasetsTest, Dataset2KeepsInitialLambda) {
  BipartiteStream s = MakeBipartiteDataset2(FastOptions()).ValueOrDie();
  EXPECT_EQ(s.graphs.size(), 50u);
  EXPECT_FALSE(s.change_points.empty());
  // All change points land on block boundaries (multiples of 5).
  for (std::size_t cp : s.change_points) EXPECT_EQ(cp % 5, 0u);
}

TEST(BipartiteDatasetsTest, Dataset3HoldsTotalWeightNearlyConstant) {
  BipartiteStreamOptions options = FastOptions();
  BipartiteStream s = MakeBipartiteDataset3(options).ValueOrDie();
  std::vector<double> totals;
  for (const BipartiteGraph& g : s.graphs) totals.push_back(g.TotalWeight());
  const double mn = *std::min_element(totals.begin(), totals.end());
  const double mx = *std::max_element(totals.begin(), totals.end());
  // The budget is fixed up to integer rounding.
  EXPECT_LT((mx - mn) / mx, 0.01);
}

TEST(BipartiteDatasetsTest, Dataset4HasTwelveBlocks) {
  BipartiteStream s = MakeBipartiteDataset4(FastOptions()).ValueOrDie();
  EXPECT_EQ(s.graphs.size(), 60u);  // 12 blocks of 5.
  // Change points only where consecutive permutations differ.
  EXPECT_FALSE(s.change_points.empty());
  for (std::size_t cp : s.change_points) EXPECT_EQ(cp % 5, 0u);
}

TEST(BipartiteDatasetsTest, AllDatasetsGenerate) {
  auto all = MakeAllBipartiteDatasets(FastOptions()).ValueOrDie();
  ASSERT_EQ(all.size(), 4u);
  for (const BipartiteStream& s : all) {
    EXPECT_FALSE(s.graphs.empty()) << s.name;
    EXPECT_FALSE(s.name.empty());
  }
}

TEST(BipartiteDatasetsTest, DeterministicForSeed) {
  BipartiteStream a = MakeBipartiteDataset1(FastOptions()).ValueOrDie();
  BipartiteStream b = MakeBipartiteDataset1(FastOptions()).ValueOrDie();
  ASSERT_EQ(a.graphs.size(), b.graphs.size());
  for (std::size_t t = 0; t < a.graphs.size(); ++t) {
    EXPECT_EQ(a.graphs[t].num_sources(), b.graphs[t].num_sources());
    EXPECT_DOUBLE_EQ(a.graphs[t].TotalWeight(), b.graphs[t].TotalWeight());
  }
}

}  // namespace
}  // namespace bagcpd
