#include "bagcpd/graph/bipartite_graph.h"

#include <gtest/gtest.h>

#include "bagcpd/graph/features.h"

namespace bagcpd {
namespace {

// The exact worked example of paper Fig. 9: five source nodes sending to four
// destination nodes. Edges (1-based in the figure, 0-based here):
//   s1->d1: 6,  s1->d3: 14, s2->d1: 8,  s3->d2: 12,
//   s4->d3: 9,  s5->d3: 3,  s5->d4: 11.
// Weights are chosen to reproduce the figure's stated totals: source 1 emits
// 20 total, source 4 emits 9; destination 1 receives 14, destination 3
// receives 26.
BipartiteGraph MakeFig9Graph() {
  BipartiteGraph g(5, 4);
  EXPECT_TRUE(g.AddEdge(0, 0, 6.0).ok());
  EXPECT_TRUE(g.AddEdge(0, 2, 14.0).ok());
  EXPECT_TRUE(g.AddEdge(1, 0, 8.0).ok());
  EXPECT_TRUE(g.AddEdge(2, 1, 12.0).ok());
  EXPECT_TRUE(g.AddEdge(3, 2, 9.0).ok());
  EXPECT_TRUE(g.AddEdge(4, 2, 3.0).ok());
  EXPECT_TRUE(g.AddEdge(4, 3, 11.0).ok());
  return g;
}

TEST(BipartiteGraphTest, BasicStructure) {
  BipartiteGraph g = MakeFig9Graph();
  EXPECT_EQ(g.num_sources(), 5u);
  EXPECT_EQ(g.num_destinations(), 4u);
  EXPECT_EQ(g.num_edges(), 7u);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 2), 14.0);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(g.TotalWeight(), 63.0);
}

TEST(BipartiteGraphTest, DuplicateEdgesAccumulate) {
  BipartiteGraph g(2, 2);
  ASSERT_TRUE(g.AddEdge(0, 0, 1.5).ok());
  ASSERT_TRUE(g.AddEdge(0, 0, 2.5).ok());
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 0), 4.0);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(BipartiteGraphTest, RejectsOutOfRangeAndZeroWeight) {
  BipartiteGraph g(2, 2);
  EXPECT_FALSE(g.AddEdge(2, 0, 1.0).ok());
  EXPECT_FALSE(g.AddEdge(0, 5, 1.0).ok());
  EXPECT_FALSE(g.AddEdge(0, 0, 0.0).ok());
  EXPECT_FALSE(g.AddEdge(0, 0, -1.0).ok());
}

TEST(BipartiteGraphTest, AdjacencyLists) {
  BipartiteGraph g = MakeFig9Graph();
  EXPECT_EQ(g.DestinationsOf(0), (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(g.SourcesOf(2), (std::vector<std::size_t>{0, 3, 4}));
  EXPECT_TRUE(g.DestinationsOf(1) == std::vector<std::size_t>{0});
}

// ---- The seven features, pinned to the Fig. 9 worked numbers. ----

TEST(GraphFeaturesTest, Fig9SourceDegree) {
  // "source node 1 is connected to 2 destination nodes, so its degree is 2".
  Bag f = ExtractGraphFeature(MakeFig9Graph(), GraphFeature::kSourceDegree)
              .ValueOrDie();
  ASSERT_EQ(f.size(), 5u);
  EXPECT_DOUBLE_EQ(f[0][0], 2.0);  // Source 1.
  EXPECT_DOUBLE_EQ(f[1][0], 1.0);
  EXPECT_DOUBLE_EQ(f[2][0], 1.0);
  EXPECT_DOUBLE_EQ(f[3][0], 1.0);
  EXPECT_DOUBLE_EQ(f[4][0], 2.0);
}

TEST(GraphFeaturesTest, Fig9DestinationDegree) {
  // "destination node 1 is connected to 2 source nodes, so its degree is 2".
  Bag f = ExtractGraphFeature(MakeFig9Graph(), GraphFeature::kDestinationDegree)
              .ValueOrDie();
  ASSERT_EQ(f.size(), 4u);
  EXPECT_DOUBLE_EQ(f[0][0], 2.0);  // Destination 1.
  EXPECT_DOUBLE_EQ(f[1][0], 1.0);
  EXPECT_DOUBLE_EQ(f[2][0], 3.0);
  EXPECT_DOUBLE_EQ(f[3][0], 1.0);
}

TEST(GraphFeaturesTest, Fig9SourceSecondDegree) {
  // "source node 1 ... its second degree is 3" (sources 2, 4, 5 via d1/d3).
  Bag f =
      ExtractGraphFeature(MakeFig9Graph(), GraphFeature::kSourceSecondDegree)
          .ValueOrDie();
  ASSERT_EQ(f.size(), 5u);
  EXPECT_DOUBLE_EQ(f[0][0], 3.0);  // Source 1.
  EXPECT_DOUBLE_EQ(f[1][0], 1.0);  // Source 2 shares d1 with source 1.
  EXPECT_DOUBLE_EQ(f[2][0], 0.0);  // Source 3 alone on d2.
  EXPECT_DOUBLE_EQ(f[3][0], 2.0);  // Source 4 shares d3 with sources 1, 5.
  EXPECT_DOUBLE_EQ(f[4][0], 2.0);  // Source 5 shares d3 with sources 1, 4.
}

TEST(GraphFeaturesTest, Fig9DestinationSecondDegree) {
  // "destination node 1 ... its second degree is 1" (d3 via source 1; source
  // 2 connects nowhere else).
  Bag f = ExtractGraphFeature(MakeFig9Graph(),
                              GraphFeature::kDestinationSecondDegree)
              .ValueOrDie();
  ASSERT_EQ(f.size(), 4u);
  EXPECT_DOUBLE_EQ(f[0][0], 1.0);  // Destination 1.
  EXPECT_DOUBLE_EQ(f[1][0], 0.0);  // Destination 2: source 3 goes nowhere else.
  EXPECT_DOUBLE_EQ(f[2][0], 2.0);  // Destination 3: d1 via s1, d4 via s5.
  EXPECT_DOUBLE_EQ(f[3][0], 1.0);  // Destination 4: d3 via s5.
}

TEST(GraphFeaturesTest, Fig9SourceStrength) {
  // "it would be 20 for source node 1, and 9 for source node 4".
  Bag f = ExtractGraphFeature(MakeFig9Graph(), GraphFeature::kSourceStrength)
              .ValueOrDie();
  ASSERT_EQ(f.size(), 5u);
  EXPECT_DOUBLE_EQ(f[0][0], 20.0);
  EXPECT_DOUBLE_EQ(f[3][0], 9.0);
}

TEST(GraphFeaturesTest, Fig9DestinationStrength) {
  // "it would be 14 for destination node 1, and 26 for destination node 3".
  Bag f =
      ExtractGraphFeature(MakeFig9Graph(), GraphFeature::kDestinationStrength)
          .ValueOrDie();
  ASSERT_EQ(f.size(), 4u);
  EXPECT_DOUBLE_EQ(f[0][0], 14.0);
  EXPECT_DOUBLE_EQ(f[2][0], 26.0);
}

TEST(GraphFeaturesTest, Fig9EdgeWeights) {
  Bag f = ExtractGraphFeature(MakeFig9Graph(), GraphFeature::kEdgeWeight)
              .ValueOrDie();
  ASSERT_EQ(f.size(), 7u);
  double total = 0.0;
  for (const Point& p : f) total += p[0];
  EXPECT_DOUBLE_EQ(total, 63.0);
}

TEST(GraphFeaturesTest, SilentNodesContributeZeros) {
  BipartiteGraph g(3, 2);
  ASSERT_TRUE(g.AddEdge(0, 0, 5.0).ok());
  Bag deg = ExtractGraphFeature(g, GraphFeature::kSourceDegree).ValueOrDie();
  ASSERT_EQ(deg.size(), 3u);
  EXPECT_DOUBLE_EQ(deg[1][0], 0.0);
  EXPECT_DOUBLE_EQ(deg[2][0], 0.0);
  Bag strength =
      ExtractGraphFeature(g, GraphFeature::kSourceStrength).ValueOrDie();
  EXPECT_DOUBLE_EQ(strength[0][0], 5.0);
  EXPECT_DOUBLE_EQ(strength[1][0], 0.0);
}

TEST(GraphFeaturesTest, EdgeWeightFeatureFailsOnEmptyGraph) {
  BipartiteGraph g(2, 2);
  EXPECT_FALSE(ExtractGraphFeature(g, GraphFeature::kEdgeWeight).ok());
}

TEST(GraphFeaturesTest, ExtractAllReturnsSevenBags) {
  auto all = ExtractAllGraphFeatures(MakeFig9Graph()).ValueOrDie();
  EXPECT_EQ(all.size(), 7u);
  EXPECT_EQ(all[0].size(), 5u);  // Source features.
  EXPECT_EQ(all[1].size(), 4u);  // Destination features.
  EXPECT_EQ(all[6].size(), 7u);  // Edge weights.
}

TEST(GraphFeaturesTest, FeatureNames) {
  EXPECT_STREQ(GraphFeatureName(GraphFeature::kSourceDegree), "source_degree");
  EXPECT_STREQ(GraphFeatureName(GraphFeature::kEdgeWeight), "edge_weight");
}

}  // namespace
}  // namespace bagcpd
