#include "bagcpd/baselines/kcd.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "bagcpd/baselines/mean_reduction.h"
#include "bagcpd/common/rng.h"

namespace bagcpd {
namespace {

std::vector<Point> GaussianCloud(Point mean, double sigma, std::size_t n,
                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> points;
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back(rng.MultivariateGaussianIso(mean, sigma));
  }
  return points;
}

TEST(OneClassSvmTest, DualConstraintsHold) {
  std::vector<Point> window = GaussianCloud({0.0, 0.0}, 1.0, 30, 1);
  OneClassSvmOptions options;
  options.nu = 0.5;
  OneClassSvmModel model = TrainOneClassSvm(window, options).ValueOrDie();
  const double box = 1.0 / (options.nu * 30.0);
  double total = 0.0;
  for (double a : model.alpha) {
    EXPECT_GE(a, -1e-12);
    EXPECT_LE(a, box + 1e-12);
    total += a;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(OneClassSvmTest, InliersScoreHigherThanOutliers) {
  std::vector<Point> window = GaussianCloud({0.0, 0.0}, 1.0, 40, 2);
  OneClassSvmOptions options;
  options.nu = 0.2;
  OneClassSvmModel model = TrainOneClassSvm(window, options).ValueOrDie();
  const double inside = model.Decision({0.0, 0.0});
  const double outside = model.Decision({15.0, 15.0});
  EXPECT_GT(inside, outside);
  EXPECT_LT(outside, 0.0);
}

TEST(OneClassSvmTest, MedianHeuristicBandwidth) {
  std::vector<Point> window = GaussianCloud({0.0}, 2.0, 25, 3);
  OneClassSvmOptions options;
  options.rbf_sigma = -1.0;
  OneClassSvmModel model = TrainOneClassSvm(window, options).ValueOrDie();
  EXPECT_GT(model.sigma, 0.1);
  EXPECT_LT(model.sigma, 20.0);
}

TEST(OneClassSvmTest, RejectsBadInputs) {
  EXPECT_FALSE(TrainOneClassSvm({}, OneClassSvmOptions{}).ok());
  OneClassSvmOptions bad_nu;
  bad_nu.nu = 0.0;
  EXPECT_FALSE(TrainOneClassSvm(GaussianCloud({0.0}, 1.0, 5, 4), bad_nu).ok());
}

TEST(KcdTest, SameDistributionLowDissimilarity) {
  std::vector<Point> a = GaussianCloud({0.0, 0.0}, 1.0, 30, 5);
  std::vector<Point> b = GaussianCloud({0.0, 0.0}, 1.0, 30, 6);
  OneClassSvmOptions svm;
  OneClassSvmModel ma = TrainOneClassSvm(a, svm).ValueOrDie();
  OneClassSvmModel mb = TrainOneClassSvm(b, svm).ValueOrDie();
  const double d_same = KcdDissimilarity(ma, mb).ValueOrDie();

  std::vector<Point> c = GaussianCloud({20.0, 20.0}, 1.0, 30, 7);
  OneClassSvmModel mc = TrainOneClassSvm(c, svm).ValueOrDie();
  const double d_diff = KcdDissimilarity(ma, mc).ValueOrDie();

  EXPECT_GE(d_same, 0.0);
  EXPECT_LE(d_same, 1.0 + 1e-9);
  EXPECT_GT(d_diff, d_same + 0.2);
}

TEST(KcdTest, SelfDissimilarityIsZero) {
  std::vector<Point> a = GaussianCloud({1.0}, 1.0, 20, 8);
  OneClassSvmModel m = TrainOneClassSvm(a, OneClassSvmOptions{}).ValueOrDie();
  EXPECT_NEAR(KcdDissimilarity(m, m).ValueOrDie(), 0.0, 1e-9);
}

TEST(KcdTest, SeriesScorePeaksAtChange) {
  Rng rng(9);
  std::vector<Point> series;
  for (int t = 0; t < 120; ++t) {
    series.push_back(t < 60 ? rng.MultivariateGaussianIso({0.0}, 1.0)
                            : rng.MultivariateGaussianIso({8.0}, 1.0));
  }
  KcdOptions options;
  options.window = 20;
  std::vector<double> scores = RunKcd(series, options).ValueOrDie();
  ASSERT_EQ(scores.size(), 120u);
  // The maximum score lands within a window length of the change at t = 60.
  const std::size_t argmax = static_cast<std::size_t>(
      std::max_element(scores.begin(), scores.end()) - scores.begin());
  EXPECT_GE(argmax, 45u);
  EXPECT_LE(argmax, 75u);
}

TEST(KcdTest, ShortSeriesYieldsZeros) {
  std::vector<Point> series = GaussianCloud({0.0}, 1.0, 10, 10);
  KcdOptions options;
  options.window = 20;
  std::vector<double> scores = RunKcd(series, options).ValueOrDie();
  for (double s : scores) EXPECT_DOUBLE_EQ(s, 0.0);
}

TEST(MeanReductionTest, ReducesToMeans) {
  BagSequence bags = {{{1.0, 2.0}, {3.0, 4.0}}, {{5.0, 6.0}}};
  std::vector<Point> means = ReduceBags(bags).ValueOrDie();
  ASSERT_EQ(means.size(), 2u);
  EXPECT_DOUBLE_EQ(means[0][0], 2.0);
  EXPECT_DOUBLE_EQ(means[0][1], 3.0);
  EXPECT_DOUBLE_EQ(means[1][0], 5.0);
}

TEST(MeanReductionTest, MeanAndStdDoublesDimension) {
  BagSequence bags = {{{0.0}, {2.0}}};
  std::vector<Point> out =
      ReduceBags(bags, BagReduction::kMeanAndStd).ValueOrDie();
  ASSERT_EQ(out[0].size(), 2u);
  EXPECT_DOUBLE_EQ(out[0][0], 1.0);
  EXPECT_DOUBLE_EQ(out[0][1], 1.0);  // Population std of {0, 2}.
}

TEST(MeanReductionTest, CountReduction) {
  BagSequence bags = {{{1.0}, {2.0}, {3.0}}, {{4.0}}};
  std::vector<Point> out = ReduceBags(bags, BagReduction::kCount).ValueOrDie();
  EXPECT_DOUBLE_EQ(out[0][0], 3.0);
  EXPECT_DOUBLE_EQ(out[1][0], 1.0);
}

}  // namespace
}  // namespace bagcpd
