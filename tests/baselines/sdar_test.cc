#include "bagcpd/baselines/sdar.h"

#include <cmath>

#include <gtest/gtest.h>

#include "bagcpd/baselines/changefinder.h"
#include "bagcpd/common/rng.h"
#include "bagcpd/common/stats.h"

namespace bagcpd {
namespace {

TEST(SdarTest, LearnsConstantSeries) {
  SdarOptions options;
  options.order = 2;
  options.discount = 0.1;
  SdarModel model(options);
  Rng rng(1);
  double late_loss = 0.0;
  for (int t = 0; t < 300; ++t) {
    const double loss = model.Update(5.0 + rng.Gaussian(0.0, 0.01));
    if (t >= 250) late_loss += loss;
  }
  // Mean settles near the series level and losses are small.
  EXPECT_NEAR(model.mean(), 5.0, 0.2);
  EXPECT_LT(late_loss / 50.0, 0.0);  // Well below the N(0,1) entropy ~1.42.
}

TEST(SdarTest, LogLossSpikesAtMeanShift) {
  SdarOptions options;
  options.order = 2;
  options.discount = 0.05;
  SdarModel model(options);
  Rng rng(2);
  double pre_loss = 0.0;
  for (int t = 0; t < 200; ++t) {
    const double loss = model.Update(rng.Gaussian(0.0, 1.0));
    if (t >= 150) pre_loss = std::max(pre_loss, loss);
  }
  // Large jump: the first post-shift losses should dwarf the running losses.
  const double shift_loss = model.Update(12.0 + rng.Gaussian(0.0, 1.0));
  EXPECT_GT(shift_loss, 2.0 * pre_loss);
}

TEST(SdarTest, WarmupReturnsZero) {
  SdarOptions options;
  options.order = 3;
  SdarModel model(options);
  EXPECT_DOUBLE_EQ(model.Update(1.0), 0.0);
  EXPECT_DOUBLE_EQ(model.Update(2.0), 0.0);
  EXPECT_DOUBLE_EQ(model.Update(3.0), 0.0);
  // Fourth observation is scored.
  EXPECT_NE(model.Update(4.0), 0.0);
}

TEST(SdarTest, TracksAr1Process) {
  // x_t = 0.8 x_{t-1} + eps: the AR coefficient estimate should approach 0.8.
  SdarOptions options;
  options.order = 1;
  options.discount = 0.02;
  SdarModel model(options);
  Rng rng(3);
  double x = 0.0;
  for (int t = 0; t < 3000; ++t) {
    x = 0.8 * x + rng.Gaussian(0.0, 1.0);
    model.Update(x);
  }
  ASSERT_EQ(model.coefficients().size(), 1u);
  EXPECT_NEAR(model.coefficients()[0], 0.8, 0.15);
}

TEST(SdarTest, ResetClearsState) {
  SdarOptions options;
  SdarModel model(options);
  for (int t = 0; t < 50; ++t) model.Update(9.0);
  model.Reset();
  EXPECT_DOUBLE_EQ(model.mean(), 0.0);
  EXPECT_DOUBLE_EQ(model.Update(1.0), 0.0);  // Warm-up again.
}

TEST(VectorSdarTest, SumsPerDimensionLosses) {
  SdarOptions options;
  options.order = 1;
  VectorSdarModel model(2, options);
  Rng rng(4);
  double loss = 0.0;
  for (int t = 0; t < 100; ++t) {
    loss = model.Update({rng.Gaussian(0.0, 1.0), rng.Gaussian(0.0, 1.0)})
               .ValueOrDie();
  }
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_FALSE(model.Update({1.0}).ok());  // Dimension mismatch.
}

TEST(ChangeFinderTest, PeaksNearMeanShift) {
  ChangeFinderOptions options;
  options.sdar.order = 2;
  options.sdar.discount = 0.05;
  options.smoothing_window = 5;
  ChangeFinder cf(1, options);
  Rng rng(5);
  std::vector<Point> series;
  for (int t = 0; t < 200; ++t) {
    series.push_back({t < 100 ? rng.Gaussian(0.0, 1.0)
                              : rng.Gaussian(10.0, 1.0)});
  }
  std::vector<double> scores = cf.Run(series).ValueOrDie();
  ASSERT_EQ(scores.size(), 200u);
  // Peak score in [100, 115] exceeds the stationary background by a margin.
  double peak_near_change = 0.0;
  for (int t = 100; t < 115; ++t) {
    peak_near_change = std::max(peak_near_change, scores[t]);
  }
  double background = 0.0;
  for (int t = 50; t < 95; ++t) background = std::max(background, scores[t]);
  EXPECT_GT(peak_near_change, background);
}

TEST(ChangeFinderTest, RunResetsBetweenCalls) {
  ChangeFinderOptions options;
  ChangeFinder cf(1, options);
  std::vector<Point> series;
  Rng rng(6);
  for (int t = 0; t < 60; ++t) series.push_back({rng.Gaussian(0.0, 1.0)});
  std::vector<double> first = cf.Run(series).ValueOrDie();
  std::vector<double> second = cf.Run(series).ValueOrDie();
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_DOUBLE_EQ(first[i], second[i]);
  }
}

}  // namespace
}  // namespace bagcpd
