#include "bagcpd/api/registry.h"

#include <set>
#include <string>

#include <gtest/gtest.h>

namespace bagcpd {
namespace api {
namespace {

// Name -> parse -> name must be the identity for every registered value of
// every component kind; this is the registry's core contract (specs, config
// files, and bench JSON all key on these strings).
template <typename E>
void ExpectRoundTrip() {
  ASSERT_FALSE(Component<E>::Values().empty()) << Component<E>::kKind;
  std::set<std::string> seen;
  for (E value : Component<E>::Values()) {
    const std::string name = Component<E>::Name(value);
    EXPECT_NE(name, "unknown") << Component<E>::kKind;
    // Names are unique within a kind.
    EXPECT_TRUE(seen.insert(name).second)
        << Component<E>::kKind << " duplicate name " << name;
    Result<E> parsed = Component<E>::Parse(name);
    ASSERT_TRUE(parsed.ok())
        << Component<E>::kKind << " '" << name
        << "': " << parsed.status().ToString();
    EXPECT_EQ(parsed.ValueOrDie(), value) << Component<E>::kKind;
  }
}

TEST(RegistryTest, EveryComponentValueRoundTrips) {
  ExpectRoundTrip<SignatureMethod>();
  ExpectRoundTrip<ScoreType>();
  ExpectRoundTrip<GroundDistance>();
  ExpectRoundTrip<WeightScheme>();
  ExpectRoundTrip<BootstrapMethod>();
  ExpectRoundTrip<EmdSolverKind>();
}

TEST(RegistryTest, KnownComponentsCoverEveryKind) {
  const std::vector<ComponentInfo> components = KnownComponents();
  ASSERT_EQ(components.size(), 6u);
  std::set<std::string> kinds;
  for (const ComponentInfo& info : components) {
    kinds.insert(info.kind);
    EXPECT_FALSE(info.names.empty()) << info.kind;
  }
  EXPECT_EQ(kinds, (std::set<std::string>{"quantizer", "score", "ground",
                                          "weights", "bootstrap", "emd"}));
  // Spot-check the published names stay stable (bench JSON keys on them).
  for (const ComponentInfo& info : components) {
    if (info.kind == "quantizer") {
      EXPECT_EQ(info.names,
                (std::vector<std::string>{"kmeans", "kmedoids", "lvq",
                                          "histogram", "centroid"}));
    }
    if (info.kind == "score") {
      EXPECT_EQ(info.names, (std::vector<std::string>{"lr", "kl"}));
    }
    if (info.kind == "emd") {
      EXPECT_EQ(info.names,
                (std::vector<std::string>{"exact", "sinkhorn", "sliced"}));
    }
  }
}

TEST(RegistryTest, UnknownNamesAreRejectedWithKnownNameList) {
  Result<SignatureMethod> bad = ParseSignatureMethod("kmeens");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("kmeens"), std::string::npos);
  EXPECT_NE(bad.status().message().find("kmeans"), std::string::npos);

  EXPECT_FALSE(ParseScoreType("pearson").ok());
  EXPECT_FALSE(ParseGroundDistance("cosine").ok());
  EXPECT_FALSE(ParseWeightScheme("exponential").ok());
  EXPECT_FALSE(ParseBootstrapMethod("jackknife").ok());
}

TEST(RegistryTest, AliasesParseButCanonicalNamesWin) {
  // Aliases exist for ergonomics; canonical names are what Name() returns.
  EXPECT_EQ(ParseScoreType("skl").ValueOrDie(), ScoreType::kSymmetrizedKl);
  EXPECT_EQ(ParseScoreType("llr").ValueOrDie(),
            ScoreType::kLogLikelihoodRatio);
  EXPECT_EQ(ParseGroundDistance("l2").ValueOrDie(),
            GroundDistance::kEuclidean);
  EXPECT_EQ(ParseGroundDistance("l1").ValueOrDie(),
            GroundDistance::kManhattan);
}

TEST(RegistryTest, CanonicalNameResolvesKindAndAlias) {
  EXPECT_EQ(CanonicalName("score", "skl").ValueOrDie(), "kl");
  EXPECT_EQ(CanonicalName("ground", "l2").ValueOrDie(), "euclidean");
  EXPECT_EQ(CanonicalName("quantizer", "kmeans").ValueOrDie(), "kmeans");

  Result<std::string> bad_kind = CanonicalName("scorer", "kl");
  ASSERT_FALSE(bad_kind.ok());
  EXPECT_NE(bad_kind.status().message().find("scorer"), std::string::npos);
  EXPECT_FALSE(CanonicalName("score", "nope").ok());
}

}  // namespace
}  // namespace api
}  // namespace bagcpd
