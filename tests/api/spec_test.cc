#include "bagcpd/api/spec.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bagcpd/data/gmm.h"

// This suite deliberately exercises the deprecated constructor shims to pin
// their parity with the Create() factories; suppress the opt-in deprecation
// warnings for the whole file.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace bagcpd {
namespace api {
namespace {

BagSequence SmallStream(std::size_t length, std::uint64_t seed) {
  Rng rng(seed);
  const GaussianMixture mix = GaussianMixture::Isotropic({0.0, 0.0}, 0.5);
  BagSequence bags;
  for (std::size_t t = 0; t < length; ++t) {
    bags.push_back(mix.SampleBag(15, &rng));
  }
  return bags;
}

TEST(DetectorSpecTest, FromKeyValuesParsesFullConfig) {
  Result<DetectorSpec> spec = DetectorSpec::FromKeyValues(
      "quantizer=kmeans, tau=5, score=skl, tau_prime=3, k=6, "
      "weights=discounted, ground=manhattan, bootstrap=standard, "
      "replicates=123, alpha=0.1, normalize=true, bin_width=0.5, "
      "histogram_origin=-1.5, distance_floor=1e-9, seed=99");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  DetectorOptions options = spec->Build().ValueOrDie();
  EXPECT_EQ(options.signature.method, SignatureMethod::kKMeans);
  EXPECT_EQ(options.tau, 5u);
  EXPECT_EQ(options.tau_prime, 3u);
  EXPECT_EQ(options.score_type, ScoreType::kSymmetrizedKl);
  EXPECT_EQ(options.signature.k, 6u);
  EXPECT_EQ(options.weight_scheme, WeightScheme::kDiscounted);
  EXPECT_EQ(options.ground, GroundDistance::kManhattan);
  EXPECT_EQ(options.bootstrap.method, BootstrapMethod::kStandard);
  EXPECT_EQ(options.bootstrap.replicates, 123);
  EXPECT_DOUBLE_EQ(options.bootstrap.alpha, 0.1);
  EXPECT_TRUE(options.signature.normalize);
  EXPECT_DOUBLE_EQ(options.signature.bin_width, 0.5);
  EXPECT_DOUBLE_EQ(options.signature.histogram_origin, -1.5);
  EXPECT_DOUBLE_EQ(options.info.distance_floor, 1e-9);
  EXPECT_EQ(options.seed, 99u);
}

TEST(DetectorSpecTest, FromKeyValuesRejectionMessagesNameTheToken) {
  Result<DetectorSpec> unknown_key = DetectorSpec::FromKeyValues("taau=5");
  ASSERT_FALSE(unknown_key.ok());
  EXPECT_NE(unknown_key.status().message().find("unknown key 'taau'"),
            std::string::npos);
  // The message lists the accepted keys so config typos are self-serviced.
  EXPECT_NE(unknown_key.status().message().find("tau_prime"),
            std::string::npos);

  Result<DetectorSpec> malformed = DetectorSpec::FromKeyValues("tau=5,score");
  ASSERT_FALSE(malformed.ok());
  EXPECT_NE(malformed.status().message().find("'score'"), std::string::npos);
  EXPECT_NE(malformed.status().message().find("key=value"), std::string::npos);

  Result<DetectorSpec> bad_int = DetectorSpec::FromKeyValues("tau=five");
  ASSERT_FALSE(bad_int.ok());
  EXPECT_NE(bad_int.status().message().find("key 'tau'"), std::string::npos);
  EXPECT_NE(bad_int.status().message().find("'five'"), std::string::npos);

  Result<DetectorSpec> bad_enum =
      DetectorSpec::FromKeyValues("quantizer=kmens");
  ASSERT_FALSE(bad_enum.ok());
  EXPECT_NE(bad_enum.status().message().find("kmens"), std::string::npos);

  EXPECT_FALSE(DetectorSpec::FromKeyValues("alpha=0.0.5").ok());
  EXPECT_FALSE(DetectorSpec::FromKeyValues("normalize=yes").ok());
  EXPECT_FALSE(DetectorSpec::FromKeyValues("seed=-1").ok());
}

TEST(DetectorSpecTest, ToKeyValuesRoundTrips) {
  const DetectorSpec spec = DetectorSpec()
                                .Tau(7)
                                .TauPrime(3)
                                .Score(ScoreType::kLogLikelihoodRatio)
                                .Quantizer(SignatureMethod::kHistogram)
                                .BinWidth(0.25)
                                .HistogramOrigin(-2.0)
                                .Normalize(true)
                                .Replicates(77)
                                .Alpha(0.01)
                                .Ground("manhattan")
                                .Weights("discounted")
                                .Bootstrap("standard")
                                .DistanceFloor(1e-10)
                                .Seed(5);
  const std::string text = spec.ToKeyValues();
  Result<DetectorSpec> reparsed = DetectorSpec::FromKeyValues(text);
  ASSERT_TRUE(reparsed.ok()) << text << ": " << reparsed.status().ToString();
  EXPECT_EQ(reparsed->ToKeyValues(), text);
  const DetectorOptions a = spec.Build().ValueOrDie();
  const DetectorOptions b = reparsed->Build().ValueOrDie();
  EXPECT_EQ(a.tau, b.tau);
  EXPECT_EQ(a.tau_prime, b.tau_prime);
  EXPECT_EQ(a.score_type, b.score_type);
  EXPECT_EQ(a.signature.method, b.signature.method);
  EXPECT_DOUBLE_EQ(a.signature.bin_width, b.signature.bin_width);
  EXPECT_DOUBLE_EQ(a.signature.histogram_origin, b.signature.histogram_origin);
  EXPECT_EQ(a.signature.normalize, b.signature.normalize);
  EXPECT_EQ(a.bootstrap.replicates, b.bootstrap.replicates);
  EXPECT_DOUBLE_EQ(a.bootstrap.alpha, b.bootstrap.alpha);
  EXPECT_EQ(a.ground, b.ground);
  EXPECT_EQ(a.weight_scheme, b.weight_scheme);
  EXPECT_EQ(a.bootstrap.method, b.bootstrap.method);
  EXPECT_DOUBLE_EQ(a.info.distance_floor, b.info.distance_floor);
  EXPECT_EQ(a.seed, b.seed);
}

TEST(DetectorSpecTest, EmdKeyParsesEverySolverForm) {
  // Bare kind names select the solver with its defaults.
  Result<DetectorSpec> exact = DetectorSpec::FromKeyValues("emd=exact");
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  EXPECT_EQ(exact->Build().ValueOrDie().emd.kind, EmdSolverKind::kExact);

  Result<DetectorSpec> sinkhorn =
      DetectorSpec::FromKeyValues("emd=sinkhorn:0.05");
  ASSERT_TRUE(sinkhorn.ok()) << sinkhorn.status().ToString();
  DetectorOptions sk = sinkhorn->Build().ValueOrDie();
  EXPECT_EQ(sk.emd.kind, EmdSolverKind::kSinkhorn);
  EXPECT_DOUBLE_EQ(sk.emd.sinkhorn_eps, 0.05);

  Result<DetectorSpec> full =
      DetectorSpec::FromKeyValues("emd=sinkhorn:0.2:250:1e-8");
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  DetectorOptions fo = full->Build().ValueOrDie();
  EXPECT_DOUBLE_EQ(fo.emd.sinkhorn_eps, 0.2);
  EXPECT_EQ(fo.emd.sinkhorn_max_iters, 250u);
  EXPECT_DOUBLE_EQ(fo.emd.sinkhorn_tolerance, 1e-8);

  Result<DetectorSpec> sliced = DetectorSpec::FromKeyValues("emd=sliced:32");
  ASSERT_TRUE(sliced.ok()) << sliced.status().ToString();
  DetectorOptions sl = sliced->Build().ValueOrDie();
  EXPECT_EQ(sl.emd.kind, EmdSolverKind::kSliced);
  EXPECT_EQ(sl.emd.sliced_projections, 32u);

  // Rejections name the offending token.
  Result<DetectorSpec> bad = DetectorSpec::FromKeyValues("emd=sankhorn:0.1");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("sankhorn"), std::string::npos);
  EXPECT_FALSE(DetectorSpec::FromKeyValues("emd=sinkhorn:0").ok());
  EXPECT_FALSE(DetectorSpec::FromKeyValues("emd=sinkhorn:-0.1").ok());
  EXPECT_FALSE(DetectorSpec::FromKeyValues("emd=sliced:0").ok());
  EXPECT_FALSE(DetectorSpec::FromKeyValues("emd=exact:1").ok());
  EXPECT_FALSE(DetectorSpec::FromKeyValues("emd=sliced:16:2").ok());
}

TEST(DetectorSpecTest, EmdKeyRoundTripsCanonically) {
  // Default (exact) stays in the canonical echo and reparses.
  const std::string base = DetectorSpec().ToKeyValues();
  EXPECT_NE(base.find("emd=exact"), std::string::npos);

  for (const std::string& form :
       {std::string("exact"), std::string("sinkhorn:0.05"),
        std::string("sinkhorn:0.1:250:1e-08"), std::string("sliced:32")}) {
    const DetectorSpec spec = DetectorSpec().Emd(form);
    const std::string text = spec.ToKeyValues();
    EXPECT_NE(text.find("emd=" + form), std::string::npos) << text;
    Result<DetectorSpec> reparsed = DetectorSpec::FromKeyValues(text);
    ASSERT_TRUE(reparsed.ok()) << text << ": " << reparsed.status().ToString();
    EXPECT_EQ(reparsed->ToKeyValues(), text);
  }

  // Non-canonical but valid spellings normalize: default iters/tol collapse
  // to the short form.
  const DetectorSpec shorthand = DetectorSpec().Emd("sinkhorn:0.1:100:1e-06");
  EXPECT_NE(shorthand.ToKeyValues().find("emd=sinkhorn:0.1,"),
            std::string::npos)
      << shorthand.ToKeyValues();

  // The enum/options fluent overloads agree with the string form.
  EmdSolverOptions options;
  options.kind = EmdSolverKind::kSliced;
  options.sliced_projections = 8;
  EXPECT_EQ(DetectorSpec().Emd(options).ToKeyValues(),
            DetectorSpec().Emd("sliced:8").ToKeyValues());
  EXPECT_EQ(DetectorSpec().Emd(EmdSolverKind::kSinkhorn).ToKeyValues(),
            DetectorSpec().Emd("sinkhorn").ToKeyValues());
}

TEST(DetectorSpecTest, EmdHeapAtKeyParsesAndRoundTrips) {
  // Default crossover is in the canonical echo and survives a round trip.
  const std::string base = DetectorSpec().ToKeyValues();
  EXPECT_NE(base.find("emd-heap-at=" + std::to_string(kDefaultEmdHeapAt)),
            std::string::npos)
      << base;

  Result<DetectorSpec> parsed = DetectorSpec::FromKeyValues("emd-heap-at=64");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Build().ValueOrDie().emd.heap_at, 64u);
  EXPECT_NE(parsed->ToKeyValues().find("emd-heap-at=64"), std::string::npos);
  Result<DetectorSpec> reparsed =
      DetectorSpec::FromKeyValues(parsed->ToKeyValues());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->ToKeyValues(), parsed->ToKeyValues());

  // 0 = always the dense scan; the fluent setter agrees with the text form.
  Result<DetectorSpec> dense = DetectorSpec::FromKeyValues("emd-heap-at=0");
  ASSERT_TRUE(dense.ok());
  EXPECT_EQ(dense->Build().ValueOrDie().emd.heap_at, 0u);
  EXPECT_EQ(DetectorSpec().EmdHeapAt(64).ToKeyValues(),
            parsed->ToKeyValues());

  // Negative and malformed values are rejected with the numeric-key message.
  Result<DetectorSpec> negative =
      DetectorSpec::FromKeyValues("emd-heap-at=-1");
  ASSERT_FALSE(negative.ok());
  EXPECT_NE(negative.status().message().find("a non-negative integer"),
            std::string::npos)
      << negative.status().ToString();
  EXPECT_FALSE(DetectorSpec::FromKeyValues("emd-heap-at=abc").ok());

  // The crossover is independent of the emd= key: setting either before or
  // after the other preserves both (key-order independence).
  Result<DetectorSpec> before =
      DetectorSpec::FromKeyValues("emd-heap-at=96,emd=sinkhorn:0.1");
  Result<DetectorSpec> after =
      DetectorSpec::FromKeyValues("emd=sinkhorn:0.1,emd-heap-at=96");
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before->ToKeyValues(), after->ToKeyValues());
  EXPECT_EQ(before->Build().ValueOrDie().emd.heap_at, 96u);
  EXPECT_EQ(before->Build().ValueOrDie().emd.kind, EmdSolverKind::kSinkhorn);
  // Likewise the fluent Emd(string) overload.
  EXPECT_EQ(DetectorSpec().EmdHeapAt(96).Emd("sinkhorn:0.1").ToKeyValues(),
            before->ToKeyValues());
}

TEST(DetectorSpecTest, FluentStringErrorSurfacesAtBuild) {
  const DetectorSpec spec = DetectorSpec().Quantizer("nope").Tau(5);
  Result<DetectorOptions> built = spec.Build();
  ASSERT_FALSE(built.ok());
  EXPECT_NE(built.status().message().find("nope"), std::string::npos);
  // Create() surfaces the same deferred error.
  EXPECT_EQ(spec.Create().status().ToString(), built.status().ToString());
}

TEST(DetectorSpecTest, CreateFailuresMirrorEveryInitStatusCase) {
  // Every incoherent-options case the legacy constructor reports through
  // init_status() must fail Create() with the exact same status.
  std::vector<DetectorOptions> bad_cases;
  DetectorOptions bad_tau;
  bad_tau.tau = 1;
  bad_cases.push_back(bad_tau);
  DetectorOptions bad_tau_prime;
  bad_tau_prime.tau_prime = 0;
  bad_cases.push_back(bad_tau_prime);
  DetectorOptions bad_alpha_low;
  bad_alpha_low.bootstrap.alpha = 0.0;
  bad_cases.push_back(bad_alpha_low);
  DetectorOptions bad_alpha_high;
  bad_alpha_high.bootstrap.alpha = 1.0;
  bad_cases.push_back(bad_alpha_high);
  DetectorOptions bad_floor;
  bad_floor.info.distance_floor = 0.0;
  bad_cases.push_back(bad_floor);

  for (const DetectorOptions& options : bad_cases) {
    BagStreamDetector legacy(options);
    ASSERT_FALSE(legacy.init_status().ok());
    Result<std::unique_ptr<BagStreamDetector>> created =
        BagStreamDetector::Create(options);
    ASSERT_FALSE(created.ok());
    EXPECT_EQ(created.status().ToString(), legacy.init_status().ToString());
  }

  // And a coherent config succeeds with init_status() OK by construction.
  DetectorOptions good;
  good.bootstrap.replicates = 0;
  Result<std::unique_ptr<BagStreamDetector>> created =
      BagStreamDetector::Create(good);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  EXPECT_TRUE((*created)->init_status().ok());
}

TEST(DetectorSpecTest, SpecCreatedDetectorMatchesLegacyConstruction) {
  DetectorOptions options;
  options.tau = 3;
  options.tau_prime = 3;
  options.bootstrap.replicates = 30;
  options.signature.k = 3;
  options.seed = 21;
  BagStreamDetector legacy(options);
  ASSERT_TRUE(legacy.init_status().ok());

  std::unique_ptr<BagStreamDetector> modern =
      DetectorSpec()
          .Tau(3)
          .TauPrime(3)
          .Replicates(30)
          .K(3)
          .Seed(21)
          .Create()
          .MoveValueUnsafe();

  const BagSequence bags = SmallStream(10, 4);
  const std::vector<StepResult> a = legacy.Run(bags).ValueOrDie();
  const std::vector<StepResult> b = modern->Run(bags).ValueOrDie();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].score, b[i].score);
    EXPECT_EQ(a[i].ci_lo, b[i].ci_lo);
    EXPECT_EQ(a[i].ci_up, b[i].ci_up);
  }
}

TEST(EngineSpecTest, CreateFailuresMirrorEveryInitStatusCase) {
  std::vector<StreamEngineOptions> bad_cases;
  StreamEngineOptions bad_queue;
  bad_queue.num_shards = 1;
  bad_queue.shard_queue_capacity = 0;
  bad_cases.push_back(bad_queue);
  StreamEngineOptions bad_detector;
  bad_detector.num_shards = 1;
  bad_detector.detector.tau = 1;
  bad_cases.push_back(bad_detector);
  StreamEngineOptions bad_arena;
  bad_arena.num_shards = 1;
  bad_arena.arena.min_buffer_capacity = 100;  // Not a power of two.
  bad_cases.push_back(bad_arena);
  // The detector.seed footgun: historically ignored silently, now loud.
  StreamEngineOptions seeded_detector;
  seeded_detector.num_shards = 1;
  seeded_detector.detector.seed = 7;
  bad_cases.push_back(seeded_detector);

  for (const StreamEngineOptions& options : bad_cases) {
    StreamEngine legacy(options);
    ASSERT_FALSE(legacy.init_status().ok());
    Result<std::unique_ptr<StreamEngine>> created =
        StreamEngine::Create(options);
    ASSERT_FALSE(created.ok());
    EXPECT_EQ(created.status().ToString(), legacy.init_status().ToString());
  }

  EXPECT_NE(StreamEngine::Create(seeded_detector)
                .status()
                .message()
                .find("detector.seed"),
            std::string::npos);
}

TEST(EngineSpecTest, BuildRejectsSeededDetectorSpec) {
  Result<StreamEngineOptions> built =
      EngineSpec()
          .NumShards(1)
          .Seed(5)
          .Detector(DetectorSpec().Tau(4).TauPrime(4).Seed(9))
          .Build();
  ASSERT_FALSE(built.ok());
  EXPECT_NE(built.status().message().find("detector.seed"), std::string::npos);
}

TEST(EngineSpecTest, CreateRegistersProfilesInOrder) {
  Result<std::unique_ptr<StreamEngine>> created =
      EngineSpec()
          .NumShards(2)
          .Seed(3)
          .Detector(DetectorSpec().Tau(4).TauPrime(4).Replicates(0))
          .Profile("coarse", DetectorSpec().Tau(2).TauPrime(2).Replicates(0))
          .Profile("lr", DetectorSpec()
                             .Tau(4)
                             .TauPrime(4)
                             .Score("lr")
                             .Replicates(0))
          .Create();
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  StreamEngine& engine = **created;
  EXPECT_EQ(engine.profile_count(), 3u);

  const BagSequence bags = SmallStream(6, 9);
  for (const Bag& bag : bags) {
    ASSERT_TRUE(engine.Submit("a", bag, "coarse").ok());
  }
  engine.Flush();
  // tau + tau' = 4 on the coarse profile: 6 bags yield 3 results.
  EXPECT_EQ(engine.Drain().size(), 3u);

  // A bad profile spec fails Create with the profile's error.
  Result<std::unique_ptr<StreamEngine>> bad =
      EngineSpec()
          .NumShards(1)
          .Profile("broken", DetectorSpec().Tau(1))
          .Create();
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("tau"), std::string::npos);
}

TEST(EngineSpecTest, FromKeyValuesSplitsEngineAndDetectorKeys) {
  Result<EngineSpec> spec = EngineSpec::FromKeyValues(
      "shards=4,queue=128,collect=true,max_idle=500,seed=42,"
      "quantizer=kmeans,tau=5,tau_prime=5,replicates=0,emd=sinkhorn:0.1");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  Result<StreamEngineOptions> options = spec->Build();
  ASSERT_TRUE(options.ok()) << options.status().ToString();
  EXPECT_EQ(options->num_shards, 4u);
  EXPECT_EQ(options->shard_queue_capacity, 128u);
  EXPECT_TRUE(options->collect_results);
  EXPECT_EQ(options->max_idle_submissions, 500u);
  EXPECT_EQ(options->seed, 42u);
  EXPECT_EQ(options->detector.tau, 5u);
  EXPECT_EQ(options->detector.bootstrap.replicates, 0);
  EXPECT_EQ(options->detector.emd.kind, EmdSolverKind::kSinkhorn);
  // Engine convention: the run seed lives on the engine, never the detector.
  EXPECT_EQ(options->detector.seed, 0u);

  EXPECT_FALSE(EngineSpec::FromKeyValues("shards=many").ok());
  EXPECT_FALSE(EngineSpec::FromKeyValues("collect=maybe").ok());
  EXPECT_FALSE(EngineSpec::FromKeyValues("tau=not_a_number").ok());
}

TEST(EngineSpecTest, ToKeyValuesRoundTrips) {
  Result<EngineSpec> spec = EngineSpec::FromKeyValues(
      "shards=2,queue=64,collect=false,max_idle=100,seed=9,"
      "tau=3,tau_prime=3,replicates=0,emd=sliced:8");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  const std::string text = spec->ToKeyValues();
  Result<EngineSpec> reparsed = EngineSpec::FromKeyValues(text);
  ASSERT_TRUE(reparsed.ok()) << text << ": " << reparsed.status().ToString();
  EXPECT_EQ(reparsed->ToKeyValues(), text);

  // The fluent path echoes the same canonical text as the parsed path.
  EngineSpec fluent;
  fluent.NumShards(2)
      .QueueCapacity(64)
      .CollectResults(false)
      .MaxIdleSubmissions(100)
      .Seed(9)
      .Detector(
          DetectorSpec().Tau(3).TauPrime(3).Replicates(0).Emd("sliced:8"));
  EXPECT_EQ(fluent.ToKeyValues(), text);

  // And the defaults round-trip too (detector seed suffix is elided).
  const std::string defaults = EngineSpec().ToKeyValues();
  Result<EngineSpec> redefaults = EngineSpec::FromKeyValues(defaults);
  ASSERT_TRUE(redefaults.ok()) << defaults;
  EXPECT_EQ(redefaults->ToKeyValues(), defaults);
  EXPECT_EQ(defaults.find("seed=0,"), defaults.rfind("seed="))
      << "detector seed must not be re-emitted: " << defaults;
}

TEST(BatchSpecTest, FromKeyValuesSplitsBatchAndDetectorKeys) {
  Result<BatchSpec> spec = BatchSpec::FromKeyValues(
      "shards=8,seed=42,quantizer=kmeans,tau=4,replicates=0");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  Result<BatchRunnerOptions> options = spec->Build();
  ASSERT_TRUE(options.ok()) << options.status().ToString();
  EXPECT_EQ(options->num_shards, 8u);
  EXPECT_EQ(options->seed, 42u);
  EXPECT_EQ(options->detector.tau, 4u);
  EXPECT_EQ(options->detector.bootstrap.replicates, 0);
  EXPECT_EQ(options->detector.seed, 0u);  // Engine convention: run seed only.

  EXPECT_FALSE(BatchSpec::FromKeyValues("shards=zero").ok());
  EXPECT_FALSE(BatchSpec::FromKeyValues("tau=not_a_number").ok());
}

TEST(BatchSpecTest, ToKeyValuesRoundTrips) {
  Result<BatchSpec> spec = BatchSpec::FromKeyValues(
      "shards=4,seed=9,tau=3,tau_prime=3,replicates=0");
  ASSERT_TRUE(spec.ok());
  const std::string text = spec->ToKeyValues();
  Result<BatchSpec> reparsed = BatchSpec::FromKeyValues(text);
  ASSERT_TRUE(reparsed.ok()) << text;
  EXPECT_EQ(reparsed->ToKeyValues(), text);
}

TEST(BatchSpecTest, BuildValidatesLikeTheRunner) {
  // A seeded detector spec violates the derive-from-run-seed convention.
  BatchSpec seeded;
  seeded.detector().Seed(7);
  EXPECT_FALSE(seeded.Build().ok());

  // Registering the reserved default profile name is refused.
  BatchSpec reserved;
  reserved.Profile("default", DetectorSpec());
  EXPECT_FALSE(reserved.Build().ok());

  // Routing a key to a profile that was never registered is refused.
  BatchSpec dangling;
  dangling.ProfileForKey("k", "missing");
  EXPECT_FALSE(dangling.Build().ok());

  // The full fluent surface builds coherent runner options.
  DetectorSpec alt;
  alt.Tau(3).TauPrime(3);
  BatchSpec fluent;
  fluent.NumShards(2).Seed(5).Profile("alt", alt).ProfileForKey("k", "alt");
  Result<BatchRunnerOptions> options = fluent.Build();
  ASSERT_TRUE(options.ok()) << options.status().ToString();
  EXPECT_EQ(options->profiles.count("alt"), 1u);
  EXPECT_EQ(options->profile_by_key.at("k"), "alt");
}

}  // namespace
}  // namespace api
}  // namespace bagcpd
