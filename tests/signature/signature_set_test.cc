#include "bagcpd/signature/signature_set.h"

#include <vector>

#include <gtest/gtest.h>

#include "bagcpd/common/rng.h"
#include "bagcpd/emd/emd.h"

namespace bagcpd {
namespace {

Signature RandomSignature(Rng* rng, std::size_t k, std::size_t dim) {
  Signature s;
  s.ReserveCenters(k, dim);
  for (std::size_t i = 0; i < k; ++i) {
    Point c(dim);
    for (double& v : c) v = rng->Uniform(-3.0, 3.0);
    s.AddCenter(c, rng->Uniform(0.5, 2.0));
  }
  return s;
}

TEST(SignatureSetTest, RoundTripMatchesVectorOfSignatures) {
  Rng rng(41);
  std::vector<Signature> originals;
  for (std::size_t i = 0; i < 6; ++i) {
    originals.push_back(RandomSignature(&rng, 2 + i % 3, 3));
  }
  SignatureSet set = SignatureSet::FromSignatures(originals).ValueOrDie();
  ASSERT_EQ(set.size(), originals.size());
  EXPECT_EQ(set.dim(), 3u);

  // Views alias the shared buffers and match the originals bitwise.
  for (std::size_t i = 0; i < set.size(); ++i) {
    const SignatureView v = set.view(i);
    ASSERT_EQ(v.size(), originals[i].size());
    EXPECT_EQ(v.weights(), originals[i].weights());
    for (std::size_t k = 0; k < v.size(); ++k) {
      for (std::size_t j = 0; j < v.dim(); ++j) {
        EXPECT_EQ(v.center(k)[j], originals[i].center(k)[j]);
      }
    }
  }

  // And scatter back to owning signatures round-trips exactly.
  const std::vector<Signature> back = set.ToSignatures();
  ASSERT_EQ(back.size(), originals.size());
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back[i].packed(), originals[i].packed());
  }
}

TEST(SignatureSetTest, StorageIsShared) {
  Rng rng(7);
  SignatureSet set;
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(set.Append(RandomSignature(&rng, 3, 2)).ok());
  }
  EXPECT_EQ(set.total_centers(), 12u);
  EXPECT_EQ(set.center_data().size(), 12u * 2u);
  EXPECT_EQ(set.weight_data().size(), 12u);
  // Consecutive members are adjacent in the one shared buffer.
  EXPECT_EQ(set.view(1).centers_data(), set.center_data().data() + 3 * 2);
  EXPECT_EQ(set.view(1).weights_data(), set.weight_data().data() + 3);
}

TEST(SignatureSetTest, RejectsEmptySignature) {
  SignatureSet set;
  EXPECT_FALSE(set.Append(SignatureView()).ok());
  EXPECT_EQ(set.size(), 0u);
}

TEST(SignatureSetTest, RejectsDimensionMismatch) {
  Rng rng(13);
  SignatureSet set;
  ASSERT_TRUE(set.Append(RandomSignature(&rng, 2, 3)).ok());
  const Signature wrong_dim = RandomSignature(&rng, 2, 4);
  EXPECT_FALSE(set.Append(wrong_dim).ok());
  // A failed append leaves the set untouched.
  EXPECT_EQ(set.size(), 1u);
  EXPECT_EQ(set.total_centers(), 2u);
}

TEST(SignatureSetTest, RejectsNonPositiveWeight) {
  SignatureSet set;
  Signature bad = Signature::FromFlat({1.0, 2.0}, 1, {1.0, 0.0});
  EXPECT_FALSE(set.Append(bad).ok());
}

TEST(SignatureSetTest, AppendUncheckedDefersValidationToValidate) {
  // The unchecked path stores invalid members for a later recoverable
  // Validate() report (WeightedSignatureSet's historical contract); only a
  // dimension mismatch is rejected because the layout cannot hold it.
  SignatureSet set;
  Signature bad_weight = Signature::FromFlat({1.0, 2.0}, 1, {1.0, 0.0});
  ASSERT_TRUE(set.AppendUnchecked(bad_weight).ok());
  ASSERT_TRUE(set.AppendUnchecked(SignatureView()).ok());  // Empty member.
  EXPECT_EQ(set.size(), 2u);
  EXPECT_FALSE(set.view(0).Validate().ok());
  EXPECT_FALSE(set.view(1).Validate().ok());
  Signature wrong_dim = Signature::FromFlat({1.0, 2.0}, 2, {1.0});
  EXPECT_FALSE(set.AppendUnchecked(wrong_dim).ok());
}

TEST(SignatureSetTest, MovedFromSetIsEmptyAndReusable) {
  Rng rng(55);
  SignatureSet set;
  ASSERT_TRUE(set.Append(RandomSignature(&rng, 3, 2)).ok());
  SignatureSet stolen = std::move(set);
  EXPECT_EQ(stolen.size(), 1u);
  // The moved-from set must be a valid empty set: size() does not
  // underflow, and it accepts new members of any dimension.
  EXPECT_EQ(set.size(), 0u);       // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(set.empty());        // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(set.total_centers(), 0u);
  ASSERT_TRUE(set.Append(RandomSignature(&rng, 2, 5)).ok());
  EXPECT_EQ(set.size(), 1u);
  EXPECT_EQ(set.dim(), 5u);
}

TEST(SignatureSetTest, FromSignaturesReportsOffendingIndex) {
  Rng rng(3);
  std::vector<Signature> mixed = {RandomSignature(&rng, 2, 2),
                                  RandomSignature(&rng, 2, 5)};
  Result<SignatureSet> set = SignatureSet::FromSignatures(mixed);
  ASSERT_FALSE(set.ok());
  EXPECT_NE(set.status().message().find("signature 1"), std::string::npos);
}

TEST(SignatureSetTest, PairwiseEmdMatrixMatchesVectorPathBitwise) {
  Rng rng(99);
  std::vector<Signature> sigs;
  for (std::size_t i = 0; i < 5; ++i) {
    sigs.push_back(RandomSignature(&rng, 2 + i % 2, 2));
  }
  SignatureSet set = SignatureSet::FromSignatures(sigs).ValueOrDie();
  const Matrix from_vector = PairwiseEmdMatrix(sigs).ValueOrDie();
  const Matrix from_set = PairwiseEmdMatrix(set).ValueOrDie();
  ASSERT_EQ(from_set.rows(), from_vector.rows());
  for (std::size_t i = 0; i < from_set.rows(); ++i) {
    for (std::size_t j = 0; j < from_set.cols(); ++j) {
      EXPECT_EQ(from_set(i, j), from_vector(i, j)) << i << "," << j;
    }
  }
}

TEST(SignatureSetTest, CrossDistanceMatrixMatchesVectorPathBitwise) {
  Rng rng(123);
  std::vector<Signature> a, b;
  for (std::size_t i = 0; i < 4; ++i) a.push_back(RandomSignature(&rng, 3, 2));
  for (std::size_t i = 0; i < 3; ++i) b.push_back(RandomSignature(&rng, 2, 2));
  SignatureSet sa = SignatureSet::FromSignatures(a).ValueOrDie();
  SignatureSet sb = SignatureSet::FromSignatures(b).ValueOrDie();
  const Matrix from_vector = CrossDistanceMatrix(a, b).ValueOrDie();
  const Matrix from_set = CrossDistanceMatrix(sa, sb).ValueOrDie();
  ASSERT_EQ(from_set.rows(), 4u);
  ASSERT_EQ(from_set.cols(), 3u);
  for (std::size_t i = 0; i < from_set.rows(); ++i) {
    for (std::size_t j = 0; j < from_set.cols(); ++j) {
      EXPECT_EQ(from_set(i, j), from_vector(i, j)) << i << "," << j;
    }
  }
}

TEST(SignatureRingTest, SlidesWithoutReallocationInSteadyState) {
  Rng rng(17);
  SignatureRing ring(4);
  for (std::size_t i = 0; i < 4; ++i) {
    ring.PushBack(RandomSignature(&rng, 3, 2));
  }
  ASSERT_TRUE(ring.full());
  // Record slot addresses; steady-state sliding must reuse them in place.
  const double* slot0 = ring.view(0).centers_data();
  for (int round = 0; round < 20; ++round) {
    ring.PopFront();
    ring.PushBack(RandomSignature(&rng, 3, 2));
  }
  EXPECT_EQ(ring.size(), 4u);
  bool found = false;
  for (std::size_t i = 0; i < ring.size(); ++i) {
    if (ring.view(i).centers_data() == slot0) found = true;
  }
  EXPECT_TRUE(found) << "ring stopped reusing its slots";
}

TEST(SignatureRingTest, PreservesFifoOrderAndValues) {
  Rng rng(5);
  SignatureRing ring(3);
  std::vector<Signature> reference;
  for (std::size_t i = 0; i < 3; ++i) {
    reference.push_back(RandomSignature(&rng, 2 + i, 2));
    ring.PushBack(reference.back());
  }
  // Slide twice.
  for (int i = 0; i < 2; ++i) {
    ring.PopFront();
    reference.erase(reference.begin());
    reference.push_back(RandomSignature(&rng, 2, 2));
    ring.PushBack(reference.back());
  }
  ASSERT_EQ(ring.size(), reference.size());
  for (std::size_t i = 0; i < ring.size(); ++i) {
    const SignatureView v = ring.view(i);
    ASSERT_EQ(v.size(), reference[i].size());
    EXPECT_EQ(v.weights(), reference[i].weights());
    for (std::size_t k = 0; k < v.size(); ++k) {
      for (std::size_t j = 0; j < v.dim(); ++j) {
        EXPECT_EQ(v.center(k)[j], reference[i].center(k)[j]);
      }
    }
  }
}

TEST(SignatureRingTest, GrowsStrideWhenLargerSignaturesArrive) {
  Rng rng(29);
  SignatureRing ring(3);
  ring.PushBack(RandomSignature(&rng, 1, 2));
  ring.PushBack(RandomSignature(&rng, 2, 2));
  const Signature big = RandomSignature(&rng, 16, 2);
  ring.PushBack(big);  // Forces a re-layout.
  ASSERT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.view(0).size(), 1u);
  EXPECT_EQ(ring.view(1).size(), 2u);
  const SignatureView grown = ring.view(2);
  ASSERT_EQ(grown.size(), 16u);
  EXPECT_EQ(grown.weights(), big.weights());
}

TEST(SignatureRingTest, BorrowedSlotCommitMatchesPushBackBitwise) {
  Rng rng(61);
  const Signature sig = RandomSignature(&rng, 5, 3);

  SignatureRing pushed(4);
  pushed.PushBack(sig);

  // Assemble the same signature straight into a borrowed slot (the detector
  // push path): centers in [0, k*dim), weights compacted to [k*dim, k*dim+k).
  SignatureRing borrowed(4);
  double* slot = borrowed.BorrowSlot(sig.size(), sig.dim());
  SignatureAssembler assembler(slot, sig.size(), sig.dim());
  for (std::size_t i = 0; i < sig.size(); ++i) {
    assembler.Add(sig.center(i), sig.weight(i));
  }
  const std::size_t k = assembler.FinishInPlace();
  ASSERT_EQ(k, sig.size());
  borrowed.CommitBorrowed(k);

  ASSERT_EQ(borrowed.size(), 1u);
  const SignatureView a = pushed.view(0);
  const SignatureView b = borrowed.view(0);
  ASSERT_EQ(b.size(), a.size());
  EXPECT_EQ(b.weights(), a.weights());
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < a.dim(); ++j) {
      EXPECT_EQ(b.center(i)[j], a.center(i)[j]);
    }
  }
}

TEST(SignatureRingTest, BorrowedSlotCompactsWeightsWhenFewerCentersSurvive) {
  // The assembler stages weights at max_count*dim; FinishInPlace must move
  // them down to k*dim when only k < max_count centers were added.
  SignatureRing ring(2);
  const std::size_t max_k = 6, dim = 2, k = 2;
  double* slot = ring.BorrowSlot(max_k, dim);
  SignatureAssembler assembler(slot, max_k, dim);
  assembler.Add(Point{1.0, 2.0}, 0.25);
  assembler.Add(Point{3.0, 4.0}, 0.75);
  ASSERT_EQ(assembler.FinishInPlace(), k);
  ring.CommitBorrowed(k);

  const SignatureView v = ring.view(0);
  ASSERT_EQ(v.size(), k);
  EXPECT_EQ(v.center(0)[0], 1.0);
  EXPECT_EQ(v.center(1)[1], 4.0);
  ASSERT_EQ(v.weights().size(), k);
  EXPECT_EQ(v.weights()[0], 0.25);
  EXPECT_EQ(v.weights()[1], 0.75);
}

TEST(SignatureRingTest, CancelBorrowLeavesRingUntouched) {
  Rng rng(83);
  SignatureRing ring(3);
  const Signature first = RandomSignature(&rng, 3, 2);
  ring.PushBack(first);

  double* slot = ring.BorrowSlot(3, 2);
  slot[0] = 99.0;  // Scribble; a canceled borrow must never become visible.
  ring.CancelBorrow();

  ASSERT_EQ(ring.size(), 1u);
  const SignatureView v = ring.view(0);
  ASSERT_EQ(v.size(), first.size());
  EXPECT_EQ(v.weights(), first.weights());
  for (std::size_t j = 0; j < v.dim(); ++j) {
    EXPECT_EQ(v.center(0)[j], first.center(0)[j]);
  }

  // The ring is immediately borrowable/pushable again.
  double* again = ring.BorrowSlot(2, 2);
  SignatureAssembler assembler(again, 2, 2);
  assembler.Add(Point{5.0, 6.0}, 1.0);
  ring.CommitBorrowed(assembler.FinishInPlace());
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.view(1).weights()[0], 1.0);
}

TEST(SignatureRingTest, BorrowGrowsStrideAndPreservesExistingSlots) {
  Rng rng(97);
  SignatureRing ring(3);
  std::vector<Signature> reference;
  for (std::size_t i = 0; i < 2; ++i) {
    reference.push_back(RandomSignature(&rng, 2, 2));
    ring.PushBack(reference.back());
  }
  // Borrowing with a much larger max_k forces a stride re-layout while the
  // existing entries must survive bitwise.
  double* slot = ring.BorrowSlot(16, 2);
  SignatureAssembler assembler(slot, 16, 2);
  const Signature big = RandomSignature(&rng, 16, 2);
  for (std::size_t i = 0; i < big.size(); ++i) {
    assembler.Add(big.center(i), big.weight(i));
  }
  ring.CommitBorrowed(assembler.FinishInPlace());

  ASSERT_EQ(ring.size(), 3u);
  for (std::size_t i = 0; i < 2; ++i) {
    const SignatureView v = ring.view(i);
    ASSERT_EQ(v.size(), reference[i].size());
    EXPECT_EQ(v.weights(), reference[i].weights());
    for (std::size_t c = 0; c < v.size(); ++c) {
      for (std::size_t j = 0; j < v.dim(); ++j) {
        EXPECT_EQ(v.center(c)[j], reference[i].center(c)[j]);
      }
    }
  }
  EXPECT_EQ(ring.view(2).weights(), big.weights());
}

}  // namespace
}  // namespace bagcpd
