#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "bagcpd/common/rng.h"
#include "bagcpd/signature/builder.h"
#include "bagcpd/signature/histogram.h"
#include "bagcpd/signature/kmedoids.h"
#include "bagcpd/signature/lvq.h"

namespace bagcpd {
namespace {

Bag MakeTwoClusters(std::size_t per_cluster, std::uint64_t seed) {
  Rng rng(seed);
  Bag bag;
  for (std::size_t i = 0; i < per_cluster; ++i) {
    bag.push_back(rng.MultivariateGaussianIso({0.0, 0.0}, 0.2));
  }
  for (std::size_t i = 0; i < per_cluster; ++i) {
    bag.push_back(rng.MultivariateGaussianIso({8.0, 8.0}, 0.2));
  }
  return bag;
}

TEST(KMedoidsTest, MedoidsAreBagPoints) {
  Bag bag = MakeTwoClusters(20, 1);
  KMedoidsOptions options;
  options.k = 2;
  Result<KMedoidsResult> res = KMedoidsQuantize(bag, options);
  ASSERT_TRUE(res.ok());
  for (std::size_t m = 0; m < res->signature.size(); ++m) {
    const Point center = res->signature.center(m).ToPoint();
    const bool is_bag_point =
        std::any_of(bag.begin(), bag.end(),
                    [&](const Point& x) { return x == center; });
    EXPECT_TRUE(is_bag_point);
  }
}

TEST(KMedoidsTest, SeparatesClusters) {
  Bag bag = MakeTwoClusters(25, 2);
  KMedoidsOptions options;
  options.k = 2;
  options.seed = 3;
  Result<KMedoidsResult> res = KMedoidsQuantize(bag, options);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->signature.size(), 2u);
  const double d = EuclideanDistance(res->signature.center(0),
                                     res->signature.center(1));
  EXPECT_GT(d, 5.0);
  EXPECT_DOUBLE_EQ(res->signature.TotalWeight(), 50.0);
}

TEST(KMedoidsTest, RejectsEmptyBagAndZeroK) {
  EXPECT_FALSE(KMedoidsQuantize(Bag{}, KMedoidsOptions{}).ok());
  KMedoidsOptions zero;
  zero.k = 0;
  EXPECT_FALSE(KMedoidsQuantize(Bag{{1.0}}, zero).ok());
}

TEST(LvqTest, SeparatesClusters) {
  Bag bag = MakeTwoClusters(30, 4);
  LvqOptions options;
  options.k = 2;
  options.seed = 5;
  Result<Signature> sig = LvqQuantize(bag, options);
  ASSERT_TRUE(sig.ok());
  ASSERT_EQ(sig->size(), 2u);
  EXPECT_GT(EuclideanDistance(sig->center(0), sig->center(1)), 5.0);
  EXPECT_DOUBLE_EQ(sig->TotalWeight(), 60.0);
}

TEST(LvqTest, RejectsBadOptions) {
  LvqOptions bad_epochs;
  bad_epochs.epochs = 0;
  EXPECT_FALSE(LvqQuantize(Bag{{1.0}}, bad_epochs).ok());
}

TEST(HistogramTest, ExactCountsOnCraftedData) {
  // 1-d: values in bins [0,1), [1,2), [2,3) with widths 1.
  Bag bag = {{0.1}, {0.9}, {1.5}, {2.2}, {2.8}, {2.9}};
  HistogramOptions options;
  options.bin_width = 1.0;
  Result<Signature> sig = HistogramQuantize(bag, options);
  ASSERT_TRUE(sig.ok());
  ASSERT_EQ(sig->size(), 3u);
  // Map ordered (bin 0, 1, 2) -> counts (2, 1, 3); centers at 0.5, 1.5, 2.5.
  EXPECT_DOUBLE_EQ(sig->center(0)[0], 0.5);
  EXPECT_DOUBLE_EQ(sig->weight(0), 2.0);
  EXPECT_DOUBLE_EQ(sig->center(1)[0], 1.5);
  EXPECT_DOUBLE_EQ(sig->weight(1), 1.0);
  EXPECT_DOUBLE_EQ(sig->center(2)[0], 2.5);
  EXPECT_DOUBLE_EQ(sig->weight(2), 3.0);
}

TEST(HistogramTest, SampleMeanCenters) {
  Bag bag = {{0.0}, {0.5}};
  HistogramOptions options;
  options.bin_width = 1.0;
  options.use_bin_centers = false;
  Result<Signature> sig = HistogramQuantize(bag, options);
  ASSERT_TRUE(sig.ok());
  ASSERT_EQ(sig->size(), 1u);
  EXPECT_DOUBLE_EQ(sig->center(0)[0], 0.25);
}

TEST(HistogramTest, NegativeValuesAndOrigin) {
  Bag bag = {{-0.5}, {-1.5}};
  HistogramOptions options;
  options.bin_width = 1.0;
  Result<Signature> sig = HistogramQuantize(bag, options);
  ASSERT_TRUE(sig.ok());
  ASSERT_EQ(sig->size(), 2u);
  EXPECT_DOUBLE_EQ(sig->center(0)[0], -1.5);
  EXPECT_DOUBLE_EQ(sig->center(1)[0], -0.5);
}

TEST(HistogramTest, MultiDimensionalBins) {
  Bag bag = {{0.2, 0.2}, {0.8, 0.8}, {1.2, 0.3}};
  HistogramOptions options;
  options.bin_width = 1.0;
  Result<Signature> sig = HistogramQuantize(bag, options);
  ASSERT_TRUE(sig.ok());
  EXPECT_EQ(sig->size(), 2u);  // (0,0) bin holds two points; (1,0) one.
  EXPECT_DOUBLE_EQ(sig->TotalWeight(), 3.0);
}

TEST(HistogramTest, OriginShiftByBinWidthIsNeutral) {
  // Shifting the grid origin by exactly one bin width relabels the bins but
  // produces identical centers and counts.
  Bag bag = {{0.2}, {0.8}, {1.7}, {2.4}};
  HistogramOptions base;
  base.bin_width = 1.0;
  base.origin = 0.0;
  HistogramOptions shifted = base;
  shifted.origin = -1.0;
  Signature s1 = HistogramQuantize(bag, base).ValueOrDie();
  Signature s2 = HistogramQuantize(bag, shifted).ValueOrDie();
  ASSERT_EQ(s1.size(), s2.size());
  EXPECT_EQ(s1.flat_centers(), s2.flat_centers());
  EXPECT_EQ(s1.weights(), s2.weights());
}

TEST(BuilderTest, NormalizeOptionYieldsUnitMass) {
  Bag bag = MakeTwoClusters(20, 8);
  SignatureBuilderOptions options;
  options.method = SignatureMethod::kKMeans;
  options.k = 4;
  options.normalize = true;
  SignatureBuilder builder(options);
  Signature sig = builder.Build(bag, 0).ValueOrDie();
  EXPECT_NEAR(sig.TotalWeight(), 1.0, 1e-12);
}

TEST(SignatureTest, NormalizedIsIdempotent) {
  Bag bag = {{0.0}, {1.0}, {1.0}};
  Signature sig = CentroidSignature(bag).Normalized();
  Signature twice = sig.Normalized();
  EXPECT_EQ(sig.weights(), twice.weights());
}

TEST(HistogramTest, RejectsNonPositiveWidth) {
  HistogramOptions options;
  options.bin_width = 0.0;
  EXPECT_FALSE(HistogramQuantize(Bag{{1.0}}, options).ok());
}

TEST(BuilderTest, DispatchesAllMethods) {
  Bag bag = MakeTwoClusters(20, 6);
  for (SignatureMethod method :
       {SignatureMethod::kKMeans, SignatureMethod::kKMedoids,
        SignatureMethod::kLvq, SignatureMethod::kHistogram,
        SignatureMethod::kCentroid}) {
    SignatureBuilderOptions options;
    options.method = method;
    options.k = 4;
    options.bin_width = 2.0;
    SignatureBuilder builder(options);
    Result<Signature> sig = builder.Build(bag, 0);
    ASSERT_TRUE(sig.ok()) << SignatureMethodName(method) << ": "
                          << sig.status().ToString();
    EXPECT_TRUE(sig->Validate().ok());
    EXPECT_NEAR(sig->TotalWeight(), 40.0, 1e-9);
    if (method == SignatureMethod::kCentroid) {
      EXPECT_EQ(sig->size(), 1u);
    }
  }
}

TEST(BuilderTest, DeterministicPerBagIndex) {
  Bag bag = MakeTwoClusters(15, 7);
  SignatureBuilderOptions options;
  options.method = SignatureMethod::kKMeans;
  options.k = 3;
  options.seed = 21;
  SignatureBuilder builder(options);
  Result<Signature> a = builder.Build(bag, 5);
  Result<Signature> b = builder.Build(bag, 5);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->flat_centers(), b->flat_centers());
  EXPECT_EQ(a->weights(), b->weights());
}

TEST(BuilderTest, MethodNames) {
  EXPECT_STREQ(SignatureMethodName(SignatureMethod::kKMeans), "kmeans");
  EXPECT_STREQ(SignatureMethodName(SignatureMethod::kHistogram), "histogram");
  EXPECT_STREQ(SignatureMethodName(SignatureMethod::kCentroid), "centroid");
}

}  // namespace
}  // namespace bagcpd
