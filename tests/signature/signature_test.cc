#include "bagcpd/signature/signature.h"

#include <vector>

#include <gtest/gtest.h>

namespace bagcpd {
namespace {

Signature MakeSimple() {
  return Signature::FromCenters({{0.0, 0.0}, {2.0, 0.0}}, {1.0, 3.0});
}

TEST(SignatureTest, BasicAccessors) {
  Signature s = MakeSimple();
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.dim(), 2u);
  EXPECT_DOUBLE_EQ(s.TotalWeight(), 4.0);
}

TEST(SignatureTest, Normalized) {
  Signature n = MakeSimple().Normalized();
  EXPECT_DOUBLE_EQ(n.TotalWeight(), 1.0);
  EXPECT_DOUBLE_EQ(n.weight(0), 0.25);
  EXPECT_DOUBLE_EQ(n.weight(1), 0.75);
  // Centers untouched.
  EXPECT_DOUBLE_EQ(n.center(1)[0], 2.0);
}

TEST(SignatureTest, NormalizeInPlaceMatchesNormalized) {
  Signature copy = MakeSimple().Normalized();
  Signature in_place = MakeSimple();
  in_place.NormalizeInPlace();
  EXPECT_EQ(copy.weights(), in_place.weights());
  EXPECT_EQ(copy.flat_centers(), in_place.flat_centers());
}

TEST(SignatureTest, Centroid) {
  Point c = MakeSimple().Centroid();
  EXPECT_DOUBLE_EQ(c[0], 1.5);
  EXPECT_DOUBLE_EQ(c[1], 0.0);
}

TEST(SignatureTest, ValidateAcceptsGood) {
  EXPECT_TRUE(MakeSimple().Validate().ok());
}

TEST(SignatureTest, ValidateRejectsEmpty) {
  Signature s;
  EXPECT_FALSE(s.Validate().ok());
}

TEST(SignatureTest, ValidateRejectsNonPositiveWeight) {
  // The packed layout makes center/weight count mismatches unrepresentable;
  // the remaining recoverable inconsistency is a non-positive weight.
  Signature s = MakeSimple();
  s.set_weight(0, 0.0);
  EXPECT_FALSE(s.Validate().ok());
  s.set_weight(0, -1.0);
  EXPECT_FALSE(s.Validate().ok());
  s.set_weight(0, 1.0);
  EXPECT_TRUE(s.Validate().ok());
}

TEST(SignatureTest, PackedBufferIsCentersThenWeights) {
  // One contiguous (K*d + K) allocation: centers block then weight block.
  Signature s = MakeSimple();
  const std::vector<double> expected = {0.0, 0.0, 2.0, 0.0, 1.0, 3.0};
  EXPECT_EQ(s.packed(), expected);
  EXPECT_EQ(s.weights().data(), s.packed().data() + 4);
}

TEST(SignatureTest, AddCenterAliasingOwnStorageIsSafe) {
  // AddCenter must survive a view into the signature's own packed buffer
  // even when the append reallocates and shifts the weight block.
  Signature s = MakeSimple();
  for (int i = 0; i < 6; ++i) s.AddCenter(s.center(0), 0.5);
  EXPECT_TRUE(s.Validate().ok());
  EXPECT_EQ(s.size(), 8u);
  for (std::size_t k = 2; k < 8; ++k) {
    EXPECT_DOUBLE_EQ(s.center(k)[0], 0.0);
    EXPECT_DOUBLE_EQ(s.weight(k), 0.5);
  }
  EXPECT_DOUBLE_EQ(s.weight(0), 1.0);
  EXPECT_DOUBLE_EQ(s.weight(1), 3.0);
}

TEST(SignatureTest, FlatCentersAreContiguousRowMajor) {
  Signature s = MakeSimple();
  const std::vector<double> expected = {0.0, 0.0, 2.0, 0.0};
  EXPECT_EQ(s.flat_centers(), expected);
  EXPECT_EQ(s.center(1).data(), s.packed().data() + 2);
  EXPECT_EQ(s.centers().size(), 2u);
  EXPECT_EQ(s.centers().dim(), 2u);
}

TEST(SignatureTest, FromFlatAdoptsBuffer) {
  Signature s = Signature::FromFlat({0.0, 0.0, 2.0, 0.0}, 2, {1.0, 3.0});
  EXPECT_TRUE(s.Validate().ok());
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.dim(), 2u);
  EXPECT_DOUBLE_EQ(s.center(1)[0], 2.0);
  EXPECT_EQ(s.flat_centers(), MakeSimple().flat_centers());
}

TEST(SignatureTest, MutableCenterWritesThrough) {
  Signature s = MakeSimple();
  s.mutable_center(0)[1] = 7.0;
  EXPECT_DOUBLE_EQ(s.center(0)[1], 7.0);
}

TEST(SignatureTest, CentroidSignatureCollapsesBag) {
  Bag bag = {{0.0, 0.0}, {4.0, 2.0}};
  Signature s = CentroidSignature(bag);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s.center(0)[0], 2.0);
  EXPECT_DOUBLE_EQ(s.center(0)[1], 1.0);
  EXPECT_DOUBLE_EQ(s.weight(0), 2.0);
}

TEST(SignatureTest, ToStringIsNonEmpty) {
  EXPECT_FALSE(MakeSimple().ToString().empty());
}

TEST(SignatureTest, MovedFromSignatureIsEmptyAndReusable) {
  Signature s = MakeSimple();
  Signature stolen = std::move(s);
  EXPECT_EQ(stolen.size(), 2u);
  // The moved-from signature must degrade to a valid empty one: no stale
  // k/dim over the cleared buffer.
  EXPECT_EQ(s.size(), 0u);  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(s.dim(), 0u);
  EXPECT_FALSE(s.Validate().ok());
  s.AddCenter(Point{5.0, 6.0, 7.0}, 2.0);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.dim(), 3u);
  EXPECT_TRUE(s.Validate().ok());
}

}  // namespace
}  // namespace bagcpd
