#include "bagcpd/signature/signature.h"

#include <vector>

#include <gtest/gtest.h>

namespace bagcpd {
namespace {

Signature MakeSimple() {
  return Signature::FromCenters({{0.0, 0.0}, {2.0, 0.0}}, {1.0, 3.0});
}

TEST(SignatureTest, BasicAccessors) {
  Signature s = MakeSimple();
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.dim(), 2u);
  EXPECT_DOUBLE_EQ(s.TotalWeight(), 4.0);
}

TEST(SignatureTest, Normalized) {
  Signature n = MakeSimple().Normalized();
  EXPECT_DOUBLE_EQ(n.TotalWeight(), 1.0);
  EXPECT_DOUBLE_EQ(n.weights[0], 0.25);
  EXPECT_DOUBLE_EQ(n.weights[1], 0.75);
  // Centers untouched.
  EXPECT_DOUBLE_EQ(n.center(1)[0], 2.0);
}

TEST(SignatureTest, Centroid) {
  Point c = MakeSimple().Centroid();
  EXPECT_DOUBLE_EQ(c[0], 1.5);
  EXPECT_DOUBLE_EQ(c[1], 0.0);
}

TEST(SignatureTest, ValidateAcceptsGood) {
  EXPECT_TRUE(MakeSimple().Validate().ok());
}

TEST(SignatureTest, ValidateRejectsEmpty) {
  Signature s;
  EXPECT_FALSE(s.Validate().ok());
}

TEST(SignatureTest, ValidateRejectsSizeMismatch) {
  Signature s = MakeSimple();
  s.weights.pop_back();
  EXPECT_FALSE(s.Validate().ok());
}

TEST(SignatureTest, ValidateRejectsNonPositiveWeight) {
  Signature s = MakeSimple();
  s.weights[0] = 0.0;
  EXPECT_FALSE(s.Validate().ok());
  s.weights[0] = -1.0;
  EXPECT_FALSE(s.Validate().ok());
}

TEST(SignatureTest, ValidateRejectsDanglingWeight) {
  // The flat layout makes ragged centers unrepresentable; the remaining
  // inconsistency is a weight without a center row.
  Signature s = MakeSimple();
  s.weights.push_back(1.0);
  EXPECT_FALSE(s.Validate().ok());
}

TEST(SignatureTest, FlatCentersAreContiguousRowMajor) {
  Signature s = MakeSimple();
  const std::vector<double> expected = {0.0, 0.0, 2.0, 0.0};
  EXPECT_EQ(s.flat_centers(), expected);
  EXPECT_EQ(s.center(1).data(), s.flat_centers().data() + 2);
  EXPECT_EQ(s.centers().size(), 2u);
  EXPECT_EQ(s.centers().dim(), 2u);
}

TEST(SignatureTest, FromFlatAdoptsBuffer) {
  Signature s = Signature::FromFlat({0.0, 0.0, 2.0, 0.0}, 2, {1.0, 3.0});
  EXPECT_TRUE(s.Validate().ok());
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.dim(), 2u);
  EXPECT_DOUBLE_EQ(s.center(1)[0], 2.0);
  EXPECT_EQ(s.flat_centers(), MakeSimple().flat_centers());
}

TEST(SignatureTest, MutableCenterWritesThrough) {
  Signature s = MakeSimple();
  s.mutable_center(0)[1] = 7.0;
  EXPECT_DOUBLE_EQ(s.center(0)[1], 7.0);
}

TEST(SignatureTest, CentroidSignatureCollapsesBag) {
  Bag bag = {{0.0, 0.0}, {4.0, 2.0}};
  Signature s = CentroidSignature(bag);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s.center(0)[0], 2.0);
  EXPECT_DOUBLE_EQ(s.center(0)[1], 1.0);
  EXPECT_DOUBLE_EQ(s.weights[0], 2.0);
}

TEST(SignatureTest, ToStringIsNonEmpty) {
  EXPECT_FALSE(MakeSimple().ToString().empty());
}

}  // namespace
}  // namespace bagcpd
