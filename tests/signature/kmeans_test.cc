#include "bagcpd/signature/kmeans.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "bagcpd/common/rng.h"

namespace bagcpd {
namespace {

// Three tight, well-separated clusters around (0,0), (10,0), (0,10).
Bag MakeThreeClusters(std::size_t per_cluster, std::uint64_t seed) {
  Rng rng(seed);
  Bag bag;
  const std::vector<Point> centers = {{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
  for (const Point& c : centers) {
    for (std::size_t i = 0; i < per_cluster; ++i) {
      bag.push_back(rng.MultivariateGaussianIso(c, 0.3));
    }
  }
  return bag;
}

TEST(KMeansTest, RecoversSeparatedClusters) {
  Bag bag = MakeThreeClusters(40, 1);
  KMeansOptions options;
  options.k = 3;
  options.seed = 42;
  Result<KMeansResult> res = KMeansQuantize(bag, options);
  ASSERT_TRUE(res.ok());
  const Signature& sig = res->signature;
  ASSERT_EQ(sig.size(), 3u);
  // Each recovered center lies close to one true center.
  const std::vector<Point> truth = {{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
  for (const Point& t : truth) {
    double best = 1e9;
    for (const PointView c : sig.centers()) {
      best = std::min(best, EuclideanDistance(t, c));
    }
    EXPECT_LT(best, 0.5);
  }
  // Balanced weights.
  for (double w : sig.weights()) EXPECT_NEAR(w, 40.0, 2.0);
}

TEST(KMeansTest, WeightsSumToBagSize) {
  Bag bag = MakeThreeClusters(30, 2);
  KMeansOptions options;
  options.k = 5;
  Result<KMeansResult> res = KMeansQuantize(bag, options);
  ASSERT_TRUE(res.ok());
  EXPECT_DOUBLE_EQ(res->signature.TotalWeight(), 90.0);
}

TEST(KMeansTest, AssignmentsMatchWeights) {
  Bag bag = MakeThreeClusters(20, 3);
  KMeansOptions options;
  options.k = 3;
  Result<KMeansResult> res = KMeansQuantize(bag, options);
  ASSERT_TRUE(res.ok());
  std::vector<double> counted(res->signature.size(), 0.0);
  for (std::size_t a : res->assignment) {
    ASSERT_LT(a, counted.size());
    counted[a] += 1.0;
  }
  for (std::size_t c = 0; c < counted.size(); ++c) {
    EXPECT_DOUBLE_EQ(counted[c], res->signature.weight(c));
  }
}

TEST(KMeansTest, KClampedToBagSize) {
  Bag bag = {{0.0}, {1.0}, {2.0}};
  KMeansOptions options;
  options.k = 10;
  Result<KMeansResult> res = KMeansQuantize(bag, options);
  ASSERT_TRUE(res.ok());
  EXPECT_LE(res->signature.size(), 3u);
  EXPECT_DOUBLE_EQ(res->signature.TotalWeight(), 3.0);
}

TEST(KMeansTest, DeterministicForSeed) {
  Bag bag = MakeThreeClusters(25, 4);
  KMeansOptions options;
  options.k = 4;
  options.seed = 99;
  Result<KMeansResult> a = KMeansQuantize(bag, options);
  Result<KMeansResult> b = KMeansQuantize(bag, options);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->signature.size(), b->signature.size());
  EXPECT_EQ(a->signature.flat_centers(), b->signature.flat_centers());
  for (std::size_t c = 0; c < a->signature.size(); ++c) {
    EXPECT_EQ(a->signature.weight(c), b->signature.weight(c));
  }
}

TEST(KMeansTest, DuplicatePointsHandled) {
  Bag bag(10, Point{1.0, 1.0});  // All identical.
  KMeansOptions options;
  options.k = 3;
  Result<KMeansResult> res = KMeansQuantize(bag, options);
  ASSERT_TRUE(res.ok());
  EXPECT_DOUBLE_EQ(res->signature.TotalWeight(), 10.0);
  EXPECT_NEAR(res->inertia, 0.0, 1e-12);
}

TEST(KMeansTest, RejectsEmptyBag) {
  EXPECT_FALSE(KMeansQuantize(Bag{}, KMeansOptions{}).ok());
}

TEST(KMeansTest, RejectsZeroK) {
  KMeansOptions options;
  options.k = 0;
  EXPECT_FALSE(KMeansQuantize(Bag{{1.0}}, options).ok());
}

TEST(KMeansTest, InertiaDecreasesWithMoreClusters) {
  Bag bag = MakeThreeClusters(30, 5);
  double prev = 1e18;
  for (std::size_t k : {1u, 2u, 3u, 6u}) {
    KMeansOptions options;
    options.k = k;
    options.seed = 7;
    Result<KMeansResult> res = KMeansQuantize(bag, options);
    ASSERT_TRUE(res.ok());
    EXPECT_LE(res->inertia, prev + 1e-9);
    prev = res->inertia;
  }
}

// Property sweep: every k produces a structurally valid signature whose
// weights add up to the bag size.
class KMeansParamTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KMeansParamTest, ProducesValidSignature) {
  Bag bag = MakeThreeClusters(15, 6);
  KMeansOptions options;
  options.k = GetParam();
  options.seed = 11;
  Result<KMeansResult> res = KMeansQuantize(bag, options);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->signature.Validate().ok());
  EXPECT_DOUBLE_EQ(res->signature.TotalWeight(), 45.0);
  EXPECT_LE(res->signature.size(), options.k);
}

INSTANTIATE_TEST_SUITE_P(KSweep, KMeansParamTest,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 45));

}  // namespace
}  // namespace bagcpd
