// Named detector profiles + the unified EngineEvent stream: one engine runs
// differently configured detectors side by side (profile routing), with
// per-stream results that stay bitwise-identical across shard counts and
// equal to standalone detectors for any thread-pool size, and every
// observable occurrence delivered as one typed event.

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bagcpd/common/rng.h"
#include "bagcpd/core/detector.h"
#include "bagcpd/data/gmm.h"
#include "bagcpd/runtime/stream_engine.h"
#include "bagcpd/runtime/thread_pool.h"

namespace bagcpd {
namespace {

DetectorOptions KlDetector() {
  DetectorOptions options;
  options.tau = 4;
  options.tau_prime = 4;
  options.score_type = ScoreType::kSymmetrizedKl;
  options.bootstrap.replicates = 40;
  options.signature.method = SignatureMethod::kKMeans;
  options.signature.k = 4;
  return options;
}

// A deliberately different pipeline: LR score, histogram quantizer, shorter
// test window — the heterogeneous-streams shape of the ROADMAP.
DetectorOptions LrDetector() {
  DetectorOptions options;
  options.tau = 5;
  options.tau_prime = 3;
  options.score_type = ScoreType::kLogLikelihoodRatio;
  options.bootstrap.replicates = 30;
  options.signature.method = SignatureMethod::kHistogram;
  options.signature.bin_width = 0.8;
  return options;
}

BagSequence JumpStream(std::size_t length, std::size_t change_at,
                       std::uint64_t seed) {
  Rng rng(seed);
  const GaussianMixture before = GaussianMixture::Isotropic({0.0, 0.0}, 0.5);
  const GaussianMixture after = GaussianMixture::Isotropic({4.0, 4.0}, 0.5);
  BagSequence bags;
  for (std::size_t t = 0; t < length; ++t) {
    const GaussianMixture& mix =
        (change_at > 0 && t >= change_at) ? after : before;
    bags.push_back(mix.SampleBag(18, &rng));
  }
  return bags;
}

void ExpectIdenticalSteps(const std::vector<StepResult>& a,
                          const std::vector<StepResult>& b,
                          const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time) << what << " step " << i;
    EXPECT_EQ(a[i].score, b[i].score) << what << " step " << i;
    EXPECT_TRUE((std::isnan(a[i].ci_lo) && std::isnan(b[i].ci_lo)) ||
                a[i].ci_lo == b[i].ci_lo)
        << what << " step " << i;
    EXPECT_TRUE((std::isnan(a[i].ci_up) && std::isnan(b[i].ci_up)) ||
                a[i].ci_up == b[i].ci_up)
        << what << " step " << i;
  }
}

TEST(EngineProfilesTest, RegisterProfileValidation) {
  StreamEngineOptions options;
  options.num_shards = 1;
  options.detector = KlDetector();
  std::unique_ptr<StreamEngine> engine =
      StreamEngine::Create(options).MoveValueUnsafe();

  EXPECT_TRUE(engine->RegisterProfile("lr", LrDetector()).ok());
  EXPECT_EQ(engine->profile_count(), 2u);

  // Duplicate and reserved names.
  EXPECT_FALSE(engine->RegisterProfile("lr", LrDetector()).ok());
  EXPECT_FALSE(engine->RegisterProfile("default", LrDetector()).ok());
  EXPECT_FALSE(engine->RegisterProfile("", LrDetector()).ok());

  // Incoherent detector options are rejected like engine creation would.
  DetectorOptions bad = LrDetector();
  bad.tau = 0;
  EXPECT_FALSE(engine->RegisterProfile("bad", bad).ok());

  // The detector.seed rule applies to profiles too.
  DetectorOptions seeded = LrDetector();
  seeded.seed = 13;
  const Status seeded_status = engine->RegisterProfile("seeded", seeded);
  ASSERT_FALSE(seeded_status.ok());
  EXPECT_NE(seeded_status.message().find("seed"), std::string::npos);

  // Registration is frozen once traffic starts.
  ASSERT_TRUE(engine->Submit("k", JumpStream(1, 0, 1).front()).ok());
  engine->Flush();
  EXPECT_FALSE(engine->RegisterProfile("late", LrDetector()).ok());
}

TEST(EngineProfilesTest, SubmitWithUnknownProfileFailsFast) {
  StreamEngineOptions options;
  options.num_shards = 1;
  options.detector = KlDetector();
  std::unique_ptr<StreamEngine> engine =
      StreamEngine::Create(options).MoveValueUnsafe();
  const Bag bag = JumpStream(1, 0, 2).front();
  const Status status = engine->Submit("k", bag, "nope");
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("nope"), std::string::npos);
  // Nothing was enqueued: the idle clock never advanced.
  EXPECT_EQ(engine->submitted_count(), 0u);
}

TEST(EngineProfilesTest, ProfileConflictQuarantinesTheStream) {
  StreamEngineOptions options;
  options.num_shards = 1;
  options.detector = KlDetector();
  options.detector.bootstrap.replicates = 0;
  std::unique_ptr<StreamEngine> engine =
      StreamEngine::Create(options).MoveValueUnsafe();
  ASSERT_TRUE(engine->RegisterProfile("lr", LrDetector()).ok());

  const BagSequence bags = JumpStream(4, 0, 3);
  ASSERT_TRUE(engine->Submit("k", bags[0]).ok());
  ASSERT_TRUE(engine->Submit("k", bags[1], "lr").ok());  // Conflict.
  ASSERT_TRUE(engine->Submit("k", bags[2]).ok());  // Dropped (quarantined).
  engine->Flush();

  const auto errors = engine->DrainErrors();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors.front().first, "k");
  EXPECT_NE(errors.front().second.message().find("bound to profile"),
            std::string::npos);
  EXPECT_EQ(engine->dropped_count(), 1u);
  EXPECT_EQ(engine->live_stream_count(), 0u);
}

TEST(EngineProfilesTest, MultiProfileResultsInvariantToShardCount) {
  // Six streams, alternating between two very different detector profiles,
  // all submitted through one engine: per-stream output must be identical
  // for 1, 2, and 4 shards — the acceptance bar for profile routing.
  const std::size_t kStreams = 6;
  std::map<std::string, BagSequence> bags;
  std::map<std::string, std::string> profile_of;
  for (std::size_t s = 0; s < kStreams; ++s) {
    const std::string key = "s" + std::to_string(s);
    bags[key] = JumpStream(16, (s % 3 == 0) ? 8 : 0, 500 + s);
    profile_of[key] = (s % 2 == 0) ? "" : "lr";
  }

  std::map<std::string, std::vector<StepResult>> baseline;
  for (std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    StreamEngineOptions options;
    options.num_shards = shards;
    options.detector = KlDetector();
    options.seed = 41;
    std::unique_ptr<StreamEngine> engine =
        StreamEngine::Create(options).MoveValueUnsafe();
    ASSERT_TRUE(engine->RegisterProfile("lr", LrDetector()).ok());
    for (std::size_t t = 0; t < 16; ++t) {
      for (const auto& [key, stream] : bags) {
        ASSERT_TRUE(engine->Submit(key, stream[t], profile_of[key]).ok());
      }
    }
    engine->Flush();
    std::map<std::string, std::vector<StepResult>> grouped;
    for (const StreamStepResult& r : engine->Drain()) {
      grouped[r.stream_id].push_back(r.step);
    }
    ASSERT_EQ(grouped.size(), kStreams);
    // The two profiles really ran different pipelines: the first inspection
    // point lands at pushed - tau', so KL (tau' = 4) starts at t = 4 and the
    // LR profile (tau' = 3) at t = 5.
    ASSERT_FALSE(grouped["s0"].empty());
    ASSERT_FALSE(grouped["s1"].empty());
    EXPECT_EQ(grouped["s0"].front().time, 4u);
    EXPECT_EQ(grouped["s1"].front().time, 5u);
    if (baseline.empty()) {
      baseline = std::move(grouped);
      continue;
    }
    for (const auto& [key, series] : baseline) {
      ExpectIdenticalSteps(series, grouped.at(key),
                           key + " @ " + std::to_string(shards) + " shards");
    }
  }
}

TEST(EngineProfilesTest, ProfileStreamsMatchStandaloneDetectorsForAnyPoolSize) {
  // The engine's per-stream output under a profile equals a standalone
  // detector built from the profile's options and the documented seed
  // derivation — including when that standalone detector parallelizes over
  // thread pools of size 1/2/8. This ties profile routing, seeding, and
  // pool determinism together.
  const std::uint64_t kEngineSeed = 77;
  std::map<std::string, BagSequence> bags;
  bags["act-0"] = JumpStream(14, 7, 900);
  bags["net-0"] = JumpStream(14, 7, 901);

  StreamEngineOptions options;
  options.num_shards = 2;
  options.detector = KlDetector();
  options.seed = kEngineSeed;
  std::unique_ptr<StreamEngine> engine =
      StreamEngine::Create(options).MoveValueUnsafe();
  ASSERT_TRUE(engine->RegisterProfile("lr", LrDetector()).ok());
  for (std::size_t t = 0; t < 14; ++t) {
    ASSERT_TRUE(engine->Submit("act-0", bags["act-0"][t]).ok());
    ASSERT_TRUE(engine->Submit("net-0", bags["net-0"][t], "lr").ok());
  }
  engine->Flush();
  std::map<std::string, std::vector<StepResult>> grouped;
  for (const StreamStepResult& r : engine->Drain()) {
    grouped[r.stream_id].push_back(r.step);
  }

  // Default profile: the historical (engine seed, key) derivation.
  DetectorOptions act = KlDetector();
  act.seed = Rng::MixSeed64(kEngineSeed ^ Rng::StableHash64("act-0"));
  // Named profile: the profile name folds into the derivation.
  DetectorOptions net = LrDetector();
  net.seed = Rng::MixSeed64(kEngineSeed ^ Rng::StableHash64("net-0") ^
                            Rng::MixSeed64(Rng::StableHash64("lr")));

  for (std::size_t threads : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                              std::size_t{8}}) {
    ThreadPool pool(threads);
    std::unique_ptr<BagStreamDetector> act_ref =
        BagStreamDetector::Create(act).MoveValueUnsafe();
    std::unique_ptr<BagStreamDetector> net_ref =
        BagStreamDetector::Create(net).MoveValueUnsafe();
    act_ref->set_thread_pool(&pool);
    net_ref->set_thread_pool(&pool);
    ExpectIdenticalSteps(act_ref->Run(bags["act-0"]).ValueOrDie(),
                         grouped.at("act-0"),
                         "act-0, pool " + std::to_string(threads));
    ExpectIdenticalSteps(net_ref->Run(bags["net-0"]).ValueOrDie(),
                         grouped.at("net-0"),
                         "net-0, pool " + std::to_string(threads));
  }
}

TEST(EngineProfilesTest, EventSinkReceivesEveryKind) {
  StreamEngineOptions options;
  options.num_shards = 1;
  options.detector = KlDetector();
  options.detector.bootstrap.replicates = 0;
  options.max_idle_submissions = 4;
  std::unique_ptr<StreamEngine> engine =
      StreamEngine::Create(options).MoveValueUnsafe();

  std::mutex mu;
  std::vector<EngineEvent> events;
  engine->set_event_sink([&](const EngineEvent& event) {
    std::lock_guard<std::mutex> lock(mu);
    events.push_back(event);
  });

  const BagSequence bags = JumpStream(9, 0, 4);
  // One bag for a key that then idles out while other traffic flows.
  ASSERT_TRUE(engine->Submit("idler", bags[0]).ok());
  for (std::size_t t = 0; t < 8; ++t) {
    ASSERT_TRUE(engine->Submit("steady", bags[t]).ok());
  }
  // The idler returns after > 4 submissions: lazy eviction fires.
  ASSERT_TRUE(engine->Submit("idler", bags[1]).ok());
  // And a ragged bag fails its stream.
  ASSERT_TRUE(engine->Submit("broken", Bag{{1.0, 2.0}, {3.0}}).ok());
  engine->Flush();

  std::lock_guard<std::mutex> lock(mu);
  std::size_t steps = 0, evictions = 0, errors = 0;
  for (const EngineEvent& event : events) {
    EXPECT_EQ(event.profile, kDefaultProfileName);
    EXPECT_GT(event.sequence, 0u);
    switch (event.kind) {
      case EngineEvent::Kind::kStep:
        ++steps;
        EXPECT_EQ(event.stream_id, "steady");
        break;
      case EngineEvent::Kind::kEviction:
        ++evictions;
        EXPECT_EQ(event.stream_id, "idler");
        break;
      case EngineEvent::Kind::kError:
        ++errors;
        EXPECT_EQ(event.stream_id, "broken");
        EXPECT_FALSE(event.error.ok());
        break;
      case EngineEvent::Kind::kCheckpoint:
      case EngineEvent::Kind::kRestore:
        ADD_FAILURE() << "no checkpoint traffic in this test";
        break;
    }
  }
  EXPECT_EQ(steps, 1u);  // steady: 8 bags, window 8 -> one result.
  EXPECT_EQ(evictions, 1u);
  EXPECT_EQ(errors, 1u);
  // With a sink installed nothing is queued.
  EXPECT_TRUE(engine->DrainEvents().empty());
  EXPECT_TRUE(engine->Drain().empty());
  EXPECT_TRUE(engine->DrainErrors().empty());
}

TEST(EngineProfilesTest, DrainEventsAndLegacyDrainsFilterOneQueue) {
  StreamEngineOptions options;
  options.num_shards = 1;
  options.detector = KlDetector();
  options.detector.bootstrap.replicates = 0;
  std::unique_ptr<StreamEngine> engine =
      StreamEngine::Create(options).MoveValueUnsafe();

  const BagSequence bags = JumpStream(8, 0, 5);
  for (const Bag& bag : bags) {
    ASSERT_TRUE(engine->Submit("good", bag).ok());
  }
  ASSERT_TRUE(engine->Submit("bad", Bag{{1.0, 2.0}, {3.0}}).ok());
  engine->Flush();

  // Legacy Drain() takes the steps and leaves the error in the queue.
  EXPECT_EQ(engine->Drain().size(), 1u);
  std::vector<EngineEvent> rest = engine->DrainEvents();
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest.front().kind, EngineEvent::Kind::kError);
  EXPECT_EQ(rest.front().stream_id, "bad");
  // Everything is gone now.
  EXPECT_TRUE(engine->DrainErrors().empty());
  EXPECT_TRUE(engine->DrainEvents().empty());
}

TEST(EngineProfilesTest, LegacyDrainsDiscardQueuedEvictions) {
  // A pre-event-API caller polling only Drain()/DrainErrors() must not leak
  // eviction events into an ever-growing queue; the legacy drains flush
  // them (evicted_count() keeps the total).
  StreamEngineOptions options;
  options.num_shards = 1;
  options.detector = KlDetector();
  options.detector.bootstrap.replicates = 0;
  options.max_idle_submissions = 2;
  std::unique_ptr<StreamEngine> engine =
      StreamEngine::Create(options).MoveValueUnsafe();

  const BagSequence bags = JumpStream(5, 0, 6);
  ASSERT_TRUE(engine->Submit("idler", bags[0]).ok());
  for (std::size_t t = 0; t < 4; ++t) {
    ASSERT_TRUE(engine->Submit("steady", bags[t]).ok());
  }
  ASSERT_TRUE(engine->Submit("idler", bags[1]).ok());  // Lazy eviction.
  engine->Flush();
  EXPECT_EQ(engine->evicted_count(), 1u);

  EXPECT_TRUE(engine->Drain().empty());  // No full window yet, no steps...
  EXPECT_TRUE(engine->DrainEvents().empty());  // ...and the eviction is gone.
}

}  // namespace
}  // namespace bagcpd
