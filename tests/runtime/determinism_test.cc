// Thread-count-invariance: the runtime's contract is that for a fixed seed,
// every observable output — bootstrap intervals, detector step results,
// engine batch results — is bitwise-identical for any pool/shard size,
// including the fully serial paths. These tests pin that contract for pool
// sizes 0 (inline), 1, 2, and 8 across the three parallel entry points:
// BootstrapScoreInterval, BagStreamDetector::Run (EMD prefill + bootstrap),
// and StreamEngine::RunBatch.

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bagcpd/common/buffer_arena.h"
#include "bagcpd/common/flat_bag.h"
#include "bagcpd/core/bootstrap.h"
#include "bagcpd/core/detector.h"
#include "bagcpd/data/gmm.h"
#include "bagcpd/runtime/stream_engine.h"
#include "bagcpd/runtime/thread_pool.h"

namespace bagcpd {
namespace {

ScoreContext MakeContext(std::size_t tau, std::size_t tau_prime) {
  ScoreContext ctx;
  ctx.log_ref_ref = Matrix(tau, tau, 0.3);
  ctx.log_test_test = Matrix(tau_prime, tau_prime, 0.4);
  ctx.log_ref_test = Matrix(tau, tau_prime, 1.0);
  for (std::size_t i = 0; i < tau; ++i) ctx.log_ref_ref(i, i) = 0.0;
  for (std::size_t i = 0; i < tau_prime; ++i) ctx.log_test_test(i, i) = 0.0;
  ctx.log_ref_test(0, 0) = 2.0;
  ctx.log_ref_ref(0, 1) = 0.9;
  ctx.log_ref_ref(1, 0) = 0.9;
  return ctx;
}

DetectorOptions SmallDetector() {
  DetectorOptions options;
  options.tau = 4;
  options.tau_prime = 4;
  options.bootstrap.replicates = 60;
  options.signature.method = SignatureMethod::kKMeans;
  options.signature.k = 4;
  options.seed = 11;
  return options;
}

// Engine-side detector config: the engine derives per-stream seeds from its
// own seed and rejects a nonzero detector.seed outright.
DetectorOptions EngineDetector() {
  DetectorOptions options = SmallDetector();
  options.seed = 0;
  return options;
}

BagSequence JumpStream(std::size_t length, std::size_t change_at,
                       std::uint64_t seed) {
  Rng rng(seed);
  const GaussianMixture before = GaussianMixture::Isotropic({0.0, 0.0}, 0.5);
  const GaussianMixture after = GaussianMixture::Isotropic({4.0, 4.0}, 0.5);
  BagSequence bags;
  for (std::size_t t = 0; t < length; ++t) {
    const GaussianMixture& mix =
        (change_at > 0 && t >= change_at) ? after : before;
    bags.push_back(mix.SampleBag(20, &rng));
  }
  return bags;
}

void ExpectIdenticalSteps(const std::vector<StepResult>& a,
                          const std::vector<StepResult>& b,
                          const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time) << what << " step " << i;
    EXPECT_DOUBLE_EQ(a[i].score, b[i].score) << what << " step " << i;
    // NaN-tolerant exact comparison for the CI fields.
    EXPECT_TRUE((std::isnan(a[i].ci_lo) && std::isnan(b[i].ci_lo)) ||
                a[i].ci_lo == b[i].ci_lo)
        << what << " step " << i;
    EXPECT_TRUE((std::isnan(a[i].ci_up) && std::isnan(b[i].ci_up)) ||
                a[i].ci_up == b[i].ci_up)
        << what << " step " << i;
    EXPECT_TRUE((std::isnan(a[i].xi) && std::isnan(b[i].xi)) ||
                a[i].xi == b[i].xi)
        << what << " step " << i;
    EXPECT_EQ(a[i].alarm, b[i].alarm) << what << " step " << i;
  }
}

TEST(DeterminismTest, BootstrapIntervalInvariantToPoolSize) {
  const ScoreContext ctx = MakeContext(5, 5);
  BootstrapOptions options;
  options.replicates = 200;
  const std::vector<double> pi(5, 0.2);

  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    Rng serial_rng(42);
    const BootstrapInterval serial =
        BootstrapScoreInterval(ScoreType::kSymmetrizedKl, ctx, pi, pi, options,
                               &serial_rng, nullptr)
            .ValueOrDie();
    ThreadPool pool(threads);
    Rng pooled_rng(42);
    const BootstrapInterval pooled =
        BootstrapScoreInterval(ScoreType::kSymmetrizedKl, ctx, pi, pi, options,
                               &pooled_rng, &pool)
            .ValueOrDie();
    EXPECT_DOUBLE_EQ(serial.lo, pooled.lo) << threads << " threads";
    EXPECT_DOUBLE_EQ(serial.up, pooled.up) << threads << " threads";
    EXPECT_DOUBLE_EQ(serial.replicate_mean, pooled.replicate_mean);
    EXPECT_DOUBLE_EQ(serial.replicate_stddev, pooled.replicate_stddev);
    // The caller's generator must have advanced identically either way.
    EXPECT_DOUBLE_EQ(serial_rng.Uniform(), pooled_rng.Uniform());
  }
}

TEST(DeterminismTest, DetectorRunInvariantToPoolSize) {
  const BagSequence bags = JumpStream(24, 12, 7);

  auto serial_owner = BagStreamDetector::Create(SmallDetector()).MoveValueUnsafe();

  BagStreamDetector& serial = *serial_owner;
  const std::vector<StepResult> baseline = serial.Run(bags).ValueOrDie();

  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    ThreadPool pool(threads);
    auto pooled_owner = BagStreamDetector::Create(SmallDetector()).MoveValueUnsafe();
    BagStreamDetector& pooled = *pooled_owner;
    pooled.set_thread_pool(&pool);
    const std::vector<StepResult> results = pooled.Run(bags).ValueOrDie();
    ExpectIdenticalSteps(baseline, results,
                         "pool size " + std::to_string(threads));
    // The prefill path computes exactly the pairs the serial path would:
    // same miss count (= transportation solves), never more. The rolling
    // score tables then read the prefilled values back as cache hits — the
    // serial path solves inside Get() instead, so it reports zero hits.
    EXPECT_EQ(pooled.emd_cache_misses(), serial.emd_cache_misses());
    EXPECT_GT(pooled.emd_cache_hits(), 0u);
    EXPECT_EQ(serial.emd_cache_hits(), 0u);
  }
}

TEST(DeterminismTest, EngineRunBatchInvariantToShardCount) {
  std::map<std::string, BagSequence> streams;
  for (int s = 0; s < 8; ++s) {
    streams["stream-" + std::to_string(s)] =
        JumpStream(20, (s % 2 == 0) ? 10 : 0, 300 + s);
  }

  std::map<std::string, std::vector<StepResult>> baseline;
  for (std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    StreamEngineOptions options;
    options.num_shards = shards;
    options.detector = EngineDetector();
    options.seed = 77;
    auto engine_owner = StreamEngine::Create(options).MoveValueUnsafe();
    StreamEngine& engine = *engine_owner;
    auto batch = engine.RunBatch(streams);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    if (baseline.empty()) {
      baseline = *batch;
      continue;
    }
    ASSERT_EQ(batch->size(), baseline.size());
    for (const auto& [key, series] : baseline) {
      ExpectIdenticalSteps(series, batch->at(key),
                           key + " @ " + std::to_string(shards) + " shards");
    }
  }
}

TEST(DeterminismTest, FlatIngestMatchesNestedForAnyPoolSize) {
  // The flat storage path must be bitwise-equal to the nested path under
  // every parallelism configuration, not just serially.
  const BagSequence bags = JumpStream(24, 12, 7);
  const FlatBagSequence flat = FlattenSequence(bags).ValueOrDie();

  auto serial_owner = BagStreamDetector::Create(SmallDetector()).MoveValueUnsafe();

  BagStreamDetector& serial = *serial_owner;
  const std::vector<StepResult> baseline = serial.Run(bags).ValueOrDie();

  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    ThreadPool pool(threads);
    auto pooled_owner = BagStreamDetector::Create(SmallDetector()).MoveValueUnsafe();
    BagStreamDetector& pooled = *pooled_owner;
    pooled.set_thread_pool(&pool);
    const std::vector<StepResult> results = pooled.Run(flat).ValueOrDie();
    ExpectIdenticalSteps(baseline, results,
                         "flat ingest, pool size " + std::to_string(threads));
  }
}

TEST(DeterminismTest, ArenaPooledDetectorInvariantToPoolSizeAndArena) {
  // The pooled-memory path composes with the thread pool: for any pool size,
  // a detector recycling its signature buffers through a BufferArena must be
  // bitwise-equal to the serial malloc baseline.
  const BagSequence bags = JumpStream(24, 12, 7);

  auto serial_owner = BagStreamDetector::Create(SmallDetector()).MoveValueUnsafe();

  BagStreamDetector& serial = *serial_owner;
  const std::vector<StepResult> baseline = serial.Run(bags).ValueOrDie();

  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    ThreadPool pool(threads);
    BufferArena arena;
    auto pooled_owner = BagStreamDetector::Create(SmallDetector()).MoveValueUnsafe();
    BagStreamDetector& pooled = *pooled_owner;
    pooled.set_thread_pool(&pool);
    pooled.set_buffer_arena(&arena);
    const std::vector<StepResult> results = pooled.Run(bags).ValueOrDie();
    ExpectIdenticalSteps(
        baseline, results,
        "arena + pool size " + std::to_string(threads));
    EXPECT_GT(arena.stats().pool_hits, 0u)
        << "arena attached but never exercised";
  }
}

TEST(DeterminismTest, EngineArenaTuningNeverChangesResults) {
  // Shard arenas are pure memory plumbing: wildly different pool tunings
  // (including an effectively disabled pool) must not perturb a single
  // result bit for any shard count.
  std::map<std::string, BagSequence> streams;
  for (int s = 0; s < 4; ++s) {
    streams["stream-" + std::to_string(s)] =
        JumpStream(16, (s % 2 == 0) ? 8 : 0, 900 + s);
  }

  std::map<std::string, std::vector<StepResult>> baseline;
  for (std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    for (const bool tiny_pool : {false, true}) {
      StreamEngineOptions options;
      options.num_shards = shards;
      options.detector = EngineDetector();
      options.seed = 13;
      if (tiny_pool) {
        // Degenerate tuning: nothing in the hot path fits the pool, so every
        // release is dropped and acquisition falls back to plain allocation.
        options.arena.min_buffer_capacity = 2;
        options.arena.max_buffer_capacity = 2;
        options.arena.max_buffers_per_class = 1;
      }
      auto engine_owner = StreamEngine::Create(options).MoveValueUnsafe();
      StreamEngine& engine = *engine_owner;
      auto batch = engine.RunBatch(streams);
      ASSERT_TRUE(batch.ok()) << batch.status().ToString();
      if (baseline.empty()) {
        baseline = *batch;
        continue;
      }
      ASSERT_EQ(batch->size(), baseline.size());
      for (const auto& [key, series] : baseline) {
        ExpectIdenticalSteps(series, batch->at(key),
                             key + " @ " + std::to_string(shards) +
                                 (tiny_pool ? " tiny pool" : " default pool"));
      }
    }
  }
}

TEST(DeterminismTest, EngineOnlineMatchesBatch) {
  // Submit/Flush/Drain and RunBatch must agree result-for-result per stream.
  std::map<std::string, BagSequence> streams;
  streams["a"] = JumpStream(16, 8, 1);
  streams["b"] = JumpStream(16, 0, 2);

  StreamEngineOptions options;
  options.num_shards = 2;
  options.detector = EngineDetector();
  options.seed = 5;

  auto batch_engine_owner = StreamEngine::Create(options).MoveValueUnsafe();

  StreamEngine& batch_engine = *batch_engine_owner;
  auto batch = batch_engine.RunBatch(streams).ValueOrDie();

  auto online_owner = StreamEngine::Create(options).MoveValueUnsafe();

  StreamEngine& online = *online_owner;
  for (const auto& [key, bags] : streams) {
    for (const Bag& bag : bags) {
      ASSERT_TRUE(online.Submit(key, bag).ok());
    }
  }
  online.Flush();
  std::map<std::string, std::vector<StepResult>> grouped;
  for (StreamStepResult& r : online.Drain()) {
    grouped[r.stream_id].push_back(r.step);
  }
  ASSERT_EQ(grouped.size(), batch.size());
  for (const auto& [key, series] : batch) {
    ExpectIdenticalSteps(series, grouped[key], "online vs batch: " + key);
  }
}

}  // namespace
}  // namespace bagcpd
