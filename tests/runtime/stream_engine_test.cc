#include "bagcpd/runtime/stream_engine.h"

#include <atomic>
#include <future>
#include <map>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "bagcpd/common/flat_bag.h"
#include "bagcpd/common/rng.h"
#include "bagcpd/core/detector.h"
#include "bagcpd/data/gmm.h"

namespace bagcpd {
namespace {

DetectorOptions SmallDetector() {
  DetectorOptions options;
  options.tau = 4;
  options.tau_prime = 4;
  options.bootstrap.replicates = 40;
  options.signature.method = SignatureMethod::kKMeans;
  options.signature.k = 4;
  return options;
}

// A 2-d stream with a mean jump at `change_at` (no jump when change_at == 0).
BagSequence JumpStream(std::size_t length, std::size_t change_at,
                       std::uint64_t seed) {
  Rng rng(seed);
  const GaussianMixture before = GaussianMixture::Isotropic({0.0, 0.0}, 0.5);
  const GaussianMixture after = GaussianMixture::Isotropic({5.0, 5.0}, 0.5);
  BagSequence bags;
  for (std::size_t t = 0; t < length; ++t) {
    const GaussianMixture& mix =
        (change_at > 0 && t >= change_at) ? after : before;
    bags.push_back(mix.SampleBag(20, &rng));
  }
  return bags;
}

StreamEngineOptions SmallEngine(std::size_t shards) {
  StreamEngineOptions options;
  options.num_shards = shards;
  options.detector = SmallDetector();
  options.seed = 99;
  return options;
}

TEST(StreamEngineTest, RejectsBadOptions) {
  // Deliberately exercises the legacy constructor shim: every bad option
  // must keep surfacing through init_status() (Create-parity is pinned in
  // api/spec_test.cc).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  StreamEngineOptions options = SmallEngine(2);
  options.shard_queue_capacity = 0;
  EXPECT_FALSE(StreamEngine(options).init_status().ok());

  StreamEngineOptions bad_detector = SmallEngine(2);
  bad_detector.detector.tau = 1;
  EXPECT_FALSE(StreamEngine(bad_detector).init_status().ok());

  // Bad arena tuning surfaces through init_status like every other option
  // (instead of aborting inside the BufferArena constructor).
  StreamEngineOptions bad_arena = SmallEngine(2);
  bad_arena.arena.min_buffer_capacity = 100;  // Not a power of two.
  EXPECT_FALSE(StreamEngine(bad_arena).init_status().ok());

  StreamEngineOptions inverted_arena = SmallEngine(2);
  inverted_arena.arena.min_buffer_capacity = 64;
  inverted_arena.arena.max_buffer_capacity = 32;
  EXPECT_FALSE(StreamEngine(inverted_arena).init_status().ok());
#pragma GCC diagnostic pop
}

TEST(StreamEngineTest, SubmitFlushDrainProcessesEveryBag) {
  auto engine_owner = StreamEngine::Create(SmallEngine(3)).MoveValueUnsafe();
  StreamEngine& engine = *engine_owner;
  ASSERT_TRUE(engine.init_status().ok());
  const std::size_t kStreams = 6;
  const std::size_t kLength = 12;
  for (std::size_t s = 0; s < kStreams; ++s) {
    BagSequence bags = JumpStream(kLength, 0, 100 + s);
    for (Bag& bag : bags) {
      ASSERT_TRUE(engine.Submit("stream-" + std::to_string(s), bag).ok());
    }
  }
  engine.Flush();
  EXPECT_EQ(engine.submitted_count(), kStreams * kLength);
  EXPECT_EQ(engine.processed_count(), kStreams * kLength);
  EXPECT_EQ(engine.stream_count(), kStreams);
  std::vector<StreamStepResult> results = engine.Drain();
  // Each stream yields length - (tau + tau') + 1 = 12 - 8 + 1 = 5 results.
  EXPECT_EQ(results.size(), kStreams * 5u);
  EXPECT_EQ(engine.result_count(), kStreams * 5u);
  // Per-stream results arrive in time order.
  std::map<std::string, std::uint64_t> last_time;
  for (const StreamStepResult& r : results) {
    auto it = last_time.find(r.stream_id);
    if (it != last_time.end()) {
      EXPECT_GT(r.step.time, it->second);
    }
    last_time[r.stream_id] = r.step.time;
  }
  EXPECT_EQ(last_time.size(), kStreams);
  // Drain removes: a second drain is empty.
  EXPECT_TRUE(engine.Drain().empty());
}

TEST(StreamEngineTest, RunBatchDetectsPlantedChanges) {
  auto engine_owner = StreamEngine::Create(SmallEngine(4)).MoveValueUnsafe();
  StreamEngine& engine = *engine_owner;
  ASSERT_TRUE(engine.init_status().ok());
  std::map<std::string, BagSequence> streams;
  streams["changing-a"] = JumpStream(30, 15, 1);
  streams["changing-b"] = JumpStream(30, 15, 2);
  streams["stationary"] = JumpStream(30, 0, 3);
  auto batch = engine.RunBatch(streams);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), 3u);
  for (const char* key : {"changing-a", "changing-b"}) {
    const std::vector<StepResult>& series = batch->at(key);
    ASSERT_EQ(series.size(), 30u - 8u + 1u);
    std::vector<std::uint64_t> alarms = AlarmTimes(series);
    ASSERT_FALSE(alarms.empty()) << key;
    for (std::uint64_t a : alarms) {
      EXPECT_GE(a, 13u) << key;
      EXPECT_LE(a, 18u) << key;
    }
  }
  EXPECT_TRUE(AlarmTimes(batch->at("stationary")).empty());
}

TEST(StreamEngineTest, CallbackDeliversResultsOnShardThreads) {
  auto engine_owner = StreamEngine::Create(SmallEngine(2)).MoveValueUnsafe();
  StreamEngine& engine = *engine_owner;
  std::atomic<int> callbacks{0};
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  engine.set_callback([&](const StreamStepResult& r) {
    EXPECT_FALSE(r.stream_id.empty());
    callbacks.fetch_add(1);
  });
#pragma GCC diagnostic pop
  BagSequence bags = JumpStream(12, 0, 5);
  for (const Bag& bag : bags) {
    ASSERT_TRUE(engine.Submit("cb", bag).ok());
  }
  engine.Flush();
  EXPECT_EQ(callbacks.load(), 5);
  // Callback mode bypasses the drainable queue.
  EXPECT_TRUE(engine.Drain().empty());
}

TEST(StreamEngineTest, QuarantinesFailingStreamOnly) {
  auto engine_owner = StreamEngine::Create(SmallEngine(2)).MoveValueUnsafe();
  StreamEngine& engine = *engine_owner;
  // A ragged bag (mismatched dimensions) fails the stream.
  Bag ragged = {{1.0, 2.0}, {3.0}};
  ASSERT_TRUE(engine.Submit("bad", ragged).ok());
  BagSequence good_bags = JumpStream(12, 0, 6);
  for (const Bag& bag : good_bags) {
    ASSERT_TRUE(engine.Submit("good", bag).ok());
    ASSERT_TRUE(engine.Submit("bad", bag).ok());  // Dropped after failure.
  }
  engine.Flush();
  auto errors = engine.DrainErrors();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors.front().first, "bad");
  EXPECT_FALSE(errors.front().second.ok());
  EXPECT_EQ(engine.dropped_count(), 12u);
  // The healthy stream was unaffected.
  std::vector<StreamStepResult> results = engine.Drain();
  EXPECT_EQ(results.size(), 5u);
  for (const StreamStepResult& r : results) EXPECT_EQ(r.stream_id, "good");
}

TEST(StreamEngineTest, QuarantineFreesTheStreamsDetector) {
  // Whether the failure is a ragged bag at the boundary or a detector error,
  // the quarantined key's detector must be released, not pinned forever.
  auto engine_owner = StreamEngine::Create(SmallEngine(1)).MoveValueUnsafe();
  StreamEngine& engine = *engine_owner;
  const BagSequence good = JumpStream(3, 0, 13);
  for (const Bag& bag : good) {
    ASSERT_TRUE(engine.Submit("doomed", bag).ok());
  }
  engine.Flush();
  EXPECT_EQ(engine.live_stream_count(), 1u);
  ASSERT_TRUE(engine.Submit("doomed", Bag{{1.0, 2.0}, {3.0}}).ok());
  engine.Flush();
  EXPECT_EQ(engine.live_stream_count(), 0u);
  EXPECT_EQ(engine.DrainErrors().size(), 1u);
}

TEST(StreamEngineTest, RunBatchRefusesStreamsQuarantinedEarlier) {
  // A stream that failed during online traffic must fail a later batch that
  // includes it, not silently return an empty series.
  auto engine_owner = StreamEngine::Create(SmallEngine(2)).MoveValueUnsafe();
  StreamEngine& engine = *engine_owner;
  Bag ragged = {{1.0, 2.0}, {3.0}};
  ASSERT_TRUE(engine.Submit("poisoned", ragged).ok());
  engine.Flush();
  std::map<std::string, BagSequence> streams;
  streams["poisoned"] = JumpStream(12, 0, 8);
  streams["fresh"] = JumpStream(12, 0, 9);
  Result<std::map<std::string, std::vector<StepResult>>> batch =
      engine.RunBatch(streams);
  ASSERT_FALSE(batch.ok());
  EXPECT_NE(batch.status().ToString().find("poisoned"), std::string::npos);
  // Without the quarantined key the batch goes through.
  streams.erase("poisoned");
  EXPECT_TRUE(engine.RunBatch(streams).ok());
}

TEST(StreamEngineTest, SubmitAfterShutdownFails) {
  auto engine_owner = StreamEngine::Create(SmallEngine(2)).MoveValueUnsafe();
  StreamEngine& engine = *engine_owner;
  engine.Shutdown();
  EXPECT_FALSE(engine.Submit("x", JumpStream(1, 0, 7).front()).ok());
}

TEST(StreamEngineTest, FlatBagSubmitMatchesNestedSubmit) {
  const BagSequence bags = JumpStream(14, 7, 11);
  auto nested_owner = StreamEngine::Create(SmallEngine(2)).MoveValueUnsafe();
  StreamEngine& nested = *nested_owner;
  auto flat_owner = StreamEngine::Create(SmallEngine(2)).MoveValueUnsafe();
  StreamEngine& flat = *flat_owner;
  for (const Bag& bag : bags) {
    ASSERT_TRUE(nested.Submit("k", bag).ok());
    ASSERT_TRUE(flat.Submit("k", FlatBag::FromBag(bag).ValueOrDie()).ok());
  }
  nested.Flush();
  flat.Flush();
  const std::vector<StreamStepResult> a = nested.Drain();
  const std::vector<StreamStepResult> b = flat.Drain();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].step.time, b[i].step.time);
    EXPECT_EQ(a[i].step.score, b[i].step.score);
  }
}

TEST(StreamEngineTest, TrySubmitReturnsUnavailableWhenShardQueueFull) {
  StreamEngineOptions options = SmallEngine(1);
  options.detector.bootstrap.replicates = 0;
  options.shard_queue_capacity = 2;
  auto engine_owner = StreamEngine::Create(options).MoveValueUnsafe();
  StreamEngine& engine = *engine_owner;
  ASSERT_TRUE(engine.init_status().ok());

  // Park the single worker inside the result callback so the queue can be
  // filled deterministically.
  std::promise<void> entered;
  std::promise<void> release;
  std::shared_future<void> release_future = release.get_future().share();
  std::atomic<bool> signaled{false};
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  engine.set_callback([&](const StreamStepResult&) {
    if (!signaled.exchange(true)) {
      entered.set_value();
      release_future.wait();
    }
  });
#pragma GCC diagnostic pop

  // tau + tau' = 8 pushes produce the first result, which blocks the worker.
  const BagSequence bags = JumpStream(8, 0, 21);
  for (const Bag& bag : bags) {
    ASSERT_TRUE(engine.Submit("k", bag).ok());
  }
  entered.get_future().wait();

  // Worker is parked and its queue is empty: capacity admits exactly two.
  const Bag extra = JumpStream(1, 0, 22).front();
  EXPECT_TRUE(engine.TrySubmit("k", extra).ok());
  EXPECT_TRUE(engine.TrySubmit("k", extra).ok());
  const Status full = engine.TrySubmit("k", extra);
  EXPECT_FALSE(full.ok());
  EXPECT_TRUE(full.IsUnavailable());
  // The FlatBag overload reports the same condition without consuming.
  FlatBag flat = FlatBag::FromBag(extra).ValueOrDie();
  const Status full_flat = engine.TrySubmit("k", std::move(flat));
  EXPECT_TRUE(full_flat.IsUnavailable());
  EXPECT_EQ(flat.size(), extra.size());  // Not consumed on rejection.

  release.set_value();
  engine.Flush();
  // After draining, TrySubmit goes through again.
  EXPECT_TRUE(engine.TrySubmit("k", extra).ok());
  engine.Flush();
  EXPECT_EQ(engine.processed_count(), 11u);
}

TEST(StreamEngineTest, IdleStreamsAreEvictedAndRestartFresh) {
  StreamEngineOptions options = SmallEngine(1);
  options.detector.bootstrap.replicates = 0;
  options.max_idle_submissions = 4;
  auto engine_owner = StreamEngine::Create(options).MoveValueUnsafe();
  StreamEngine& engine = *engine_owner;
  ASSERT_TRUE(engine.init_status().ok());

  const BagSequence cold_bags = JumpStream(12, 0, 31);
  // First segment of the cold stream.
  for (std::size_t t = 0; t < 3; ++t) {
    ASSERT_TRUE(engine.Submit("cold", cold_bags[t]).ok());
  }
  // More than max_idle_submissions of other traffic idles the key out.
  const BagSequence hot_bags = JumpStream(8, 0, 32);
  for (const Bag& bag : hot_bags) {
    ASSERT_TRUE(engine.Submit("hot", bag).ok());
  }
  // Second segment: the key must restart from scratch.
  for (std::size_t t = 3; t < cold_bags.size(); ++t) {
    ASSERT_TRUE(engine.Submit("cold", cold_bags[t]).ok());
  }
  engine.Flush();
  EXPECT_EQ(engine.evicted_count(), 1u);

  std::vector<StepResult> cold_results;
  for (const StreamStepResult& r : engine.Drain()) {
    if (r.stream_id == "cold") cold_results.push_back(r.step);
  }
  // Reference: a fresh detector fed only the second segment (the first
  // segment's 3 bags are < tau + tau', so it yielded no results).
  DetectorOptions per_stream = options.detector;
  per_stream.seed = Rng::MixSeed64(options.seed ^ Rng::StableHash64("cold"));
  auto reference_owner = BagStreamDetector::Create(per_stream).MoveValueUnsafe();
  BagStreamDetector& reference = *reference_owner;
  std::vector<StepResult> expected;
  for (std::size_t t = 3; t < cold_bags.size(); ++t) {
    auto step = reference.Push(cold_bags[t]).ValueOrDie();
    if (step.has_value()) expected.push_back(*step);
  }
  ASSERT_EQ(cold_results.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    // Times restart at the detector's own clock after eviction.
    EXPECT_EQ(cold_results[i].time, expected[i].time);
    EXPECT_EQ(cold_results[i].score, expected[i].score);
  }
}

TEST(StreamEngineTest, EvictionIsDeterministicAcrossShardCounts) {
  const std::size_t kStreams = 6;
  std::map<std::string, std::vector<double>> baseline;
  for (std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    StreamEngineOptions options = SmallEngine(shards);
    options.detector.bootstrap.replicates = 0;
    // Bursts of other keys put ~20 submissions between a key's adjacent
    // bursts and ~36 when it skips one; 24 evicts only the skippers.
    options.max_idle_submissions = 24;
    auto engine_owner = StreamEngine::Create(options).MoveValueUnsafe();
    StreamEngine& engine = *engine_owner;
    ASSERT_TRUE(engine.init_status().ok());
    // Alternate bursts so some keys go idle past the threshold mid-run; the
    // submission order (and hence the global idle clock) is fixed.
    std::map<std::string, BagSequence> bags;
    for (std::size_t s = 0; s < kStreams; ++s) {
      bags["s" + std::to_string(s)] = JumpStream(12, 0, 700 + s);
    }
    for (std::size_t burst = 0; burst < 3; ++burst) {
      for (std::size_t s = 0; s < kStreams; ++s) {
        if (burst == 1 && s < 2) continue;  // Keys s0, s1 sit out a burst.
        const std::string key = "s" + std::to_string(s);
        for (std::size_t t = burst * 4; t < burst * 4 + 4; ++t) {
          ASSERT_TRUE(engine.Submit(key, bags[key][t]).ok());
        }
      }
    }
    engine.Flush();
    std::map<std::string, std::vector<double>> grouped;
    for (const StreamStepResult& r : engine.Drain()) {
      grouped[r.stream_id].push_back(r.step.score);
    }
    EXPECT_GT(engine.evicted_count(), 0u) << shards << " shards";
    if (baseline.empty()) {
      baseline = std::move(grouped);
      continue;
    }
    EXPECT_EQ(grouped, baseline) << shards << " shards";
  }
}

TEST(StreamEngineTest, IdleSweepReclaimsDetectorMemory) {
  StreamEngineOptions options = SmallEngine(1);
  options.detector.bootstrap.replicates = 0;
  options.max_idle_submissions = 16;
  auto engine_owner = StreamEngine::Create(options).MoveValueUnsafe();
  StreamEngine& engine = *engine_owner;
  ASSERT_TRUE(engine.init_status().ok());

  // One bag for a key that then goes silent forever.
  ASSERT_TRUE(engine.Submit("silent", JumpStream(1, 0, 41).front()).ok());
  // Enough follow-on traffic to cross the periodic sweep threshold (512).
  const Bag filler = JumpStream(1, 0, 42).front();
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(engine.Submit("busy", filler).ok());
  }
  engine.Flush();
  // The sweep freed the silent key's detector without it ever returning.
  EXPECT_GE(engine.evicted_count(), 1u);
  EXPECT_EQ(engine.live_stream_count(), 1u);
}

TEST(StreamEngineTest, BackpressureDoesNotDeadlockTinyQueues) {
  StreamEngineOptions options = SmallEngine(2);
  options.shard_queue_capacity = 1;
  auto engine_owner = StreamEngine::Create(options).MoveValueUnsafe();
  StreamEngine& engine = *engine_owner;
  for (std::size_t s = 0; s < 4; ++s) {
    BagSequence bags = JumpStream(15, 0, 200 + s);
    for (const Bag& bag : bags) {
      ASSERT_TRUE(engine.Submit("k" + std::to_string(s), bag).ok());
    }
  }
  engine.Flush();
  EXPECT_EQ(engine.processed_count(), 60u);
}

TEST(StreamEngineTest, RunBatchProfileMapRoutesPerKey) {
  // "alt" has a shorter window: tau + tau' = 6 instead of 8, so a routed
  // stream of length 12 yields 7 results instead of 5.
  DetectorOptions alt = SmallDetector();
  alt.tau = 3;
  alt.tau_prime = 3;

  auto engine_owner = StreamEngine::Create(SmallEngine(2)).MoveValueUnsafe();
  StreamEngine& engine = *engine_owner;
  ASSERT_TRUE(engine.RegisterProfile("alt", alt).ok());

  std::map<std::string, BagSequence> streams;
  streams["routed"] = JumpStream(12, 0, 61);
  streams["plain"] = JumpStream(12, 0, 62);
  std::map<std::string, std::string> routes;
  routes["routed"] = "alt";
  routes["absent-key"] = "alt";  // Not in `streams`: must be ignored.
  auto batch = engine.RunBatch(streams, routes);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_EQ(batch->at("routed").size(), 7u);
  EXPECT_EQ(batch->at("plain").size(), 5u);

  // The routed stream is bitwise what an all-"alt" sweep of the same key
  // produces: routing never perturbs the per-key seed derivation.
  auto alt_engine = StreamEngine::Create(SmallEngine(1)).MoveValueUnsafe();
  ASSERT_TRUE(alt_engine->RegisterProfile("alt", alt).ok());
  std::map<std::string, BagSequence> routed_only;
  routed_only["routed"] = JumpStream(12, 0, 61);
  auto alt_batch = alt_engine->RunBatch(routed_only, "alt");
  ASSERT_TRUE(alt_batch.ok());
  const std::vector<StepResult>& a = batch->at("routed");
  const std::vector<StepResult>& b = alt_batch->at("routed");
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].score, b[i].score);
    EXPECT_EQ(a[i].alarm, b[i].alarm);
  }
}

TEST(StreamEngineTest, RunBatchProfileMapRejectsUnknownProfileUpFront) {
  auto engine_owner = StreamEngine::Create(SmallEngine(2)).MoveValueUnsafe();
  StreamEngine& engine = *engine_owner;
  std::map<std::string, BagSequence> streams;
  streams["k"] = JumpStream(10, 0, 63);
  std::map<std::string, std::string> routes;
  routes["k"] = "never-registered";
  auto batch = engine.RunBatch(streams, routes);
  EXPECT_FALSE(batch.ok());
  // Failed before any submission: the engine is untouched and reusable.
  EXPECT_EQ(engine.submitted_count(), 0u);
  ASSERT_TRUE(engine.RunBatch(streams).ok());
}

TEST(StreamEngineTest, RunBatchProfileMapConflictFailsTheBatch) {
  DetectorOptions alt = SmallDetector();
  alt.tau = 3;
  auto engine_owner = StreamEngine::Create(SmallEngine(1)).MoveValueUnsafe();
  StreamEngine& engine = *engine_owner;
  ASSERT_TRUE(engine.RegisterProfile("alt", alt).ok());

  // The key binds to the default profile through online traffic first.
  ASSERT_TRUE(engine.Submit("k", JumpStream(1, 0, 64).front()).ok());
  engine.Flush();

  std::map<std::string, BagSequence> streams;
  streams["k"] = JumpStream(10, 0, 65);
  std::map<std::string, std::string> routes;
  routes["k"] = "alt";
  auto batch = engine.RunBatch(streams, routes);
  EXPECT_FALSE(batch.ok());  // Profile conflict quarantines the stream.
}

TEST(StreamEngineTest, LatencyStatsCoverEveryProcessedSubmission) {
  auto engine_owner = StreamEngine::Create(SmallEngine(2)).MoveValueUnsafe();
  StreamEngine& engine = *engine_owner;
  EXPECT_EQ(engine.latency_stats().samples, 0u);
  EXPECT_EQ(engine.latency_stats().mean_ns(), 0.0);

  const std::size_t kBags = 24;
  BagSequence bags = JumpStream(kBags, 0, 66);
  for (const Bag& bag : bags) {
    ASSERT_TRUE(engine.Submit("k", bag).ok());
  }
  engine.Flush();

  const EngineLatencyStats stats = engine.latency_stats();
  EXPECT_EQ(stats.samples, kBags);
  EXPECT_GE(stats.total_ns, stats.max_ns);
  EXPECT_GE(stats.mean_ns(), 0.0);
  EXPECT_LE(stats.mean_ns(), static_cast<double>(stats.max_ns));
  // Per-event latency is a subset of the same measurement, so no event can
  // exceed the engine-wide peak.
  for (const EngineEvent& event : engine.DrainEvents()) {
    EXPECT_LE(event.enqueue_to_process_ns, stats.max_ns);
  }
}

}  // namespace
}  // namespace bagcpd
