#include "bagcpd/runtime/stream_engine.h"

#include <atomic>
#include <map>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "bagcpd/common/rng.h"
#include "bagcpd/data/gmm.h"

namespace bagcpd {
namespace {

DetectorOptions SmallDetector() {
  DetectorOptions options;
  options.tau = 4;
  options.tau_prime = 4;
  options.bootstrap.replicates = 40;
  options.signature.method = SignatureMethod::kKMeans;
  options.signature.k = 4;
  return options;
}

// A 2-d stream with a mean jump at `change_at` (no jump when change_at == 0).
BagSequence JumpStream(std::size_t length, std::size_t change_at,
                       std::uint64_t seed) {
  Rng rng(seed);
  const GaussianMixture before = GaussianMixture::Isotropic({0.0, 0.0}, 0.5);
  const GaussianMixture after = GaussianMixture::Isotropic({5.0, 5.0}, 0.5);
  BagSequence bags;
  for (std::size_t t = 0; t < length; ++t) {
    const GaussianMixture& mix =
        (change_at > 0 && t >= change_at) ? after : before;
    bags.push_back(mix.SampleBag(20, &rng));
  }
  return bags;
}

StreamEngineOptions SmallEngine(std::size_t shards) {
  StreamEngineOptions options;
  options.num_shards = shards;
  options.detector = SmallDetector();
  options.seed = 99;
  return options;
}

TEST(StreamEngineTest, RejectsBadOptions) {
  StreamEngineOptions options = SmallEngine(2);
  options.shard_queue_capacity = 0;
  EXPECT_FALSE(StreamEngine(options).init_status().ok());

  StreamEngineOptions bad_detector = SmallEngine(2);
  bad_detector.detector.tau = 1;
  EXPECT_FALSE(StreamEngine(bad_detector).init_status().ok());
}

TEST(StreamEngineTest, SubmitFlushDrainProcessesEveryBag) {
  StreamEngine engine(SmallEngine(3));
  ASSERT_TRUE(engine.init_status().ok());
  const std::size_t kStreams = 6;
  const std::size_t kLength = 12;
  for (std::size_t s = 0; s < kStreams; ++s) {
    BagSequence bags = JumpStream(kLength, 0, 100 + s);
    for (Bag& bag : bags) {
      ASSERT_TRUE(engine.Submit("stream-" + std::to_string(s), bag).ok());
    }
  }
  engine.Flush();
  EXPECT_EQ(engine.submitted_count(), kStreams * kLength);
  EXPECT_EQ(engine.processed_count(), kStreams * kLength);
  EXPECT_EQ(engine.stream_count(), kStreams);
  std::vector<StreamStepResult> results = engine.Drain();
  // Each stream yields length - (tau + tau') + 1 = 12 - 8 + 1 = 5 results.
  EXPECT_EQ(results.size(), kStreams * 5u);
  EXPECT_EQ(engine.result_count(), kStreams * 5u);
  // Per-stream results arrive in time order.
  std::map<std::string, std::uint64_t> last_time;
  for (const StreamStepResult& r : results) {
    auto it = last_time.find(r.stream_id);
    if (it != last_time.end()) EXPECT_GT(r.step.time, it->second);
    last_time[r.stream_id] = r.step.time;
  }
  EXPECT_EQ(last_time.size(), kStreams);
  // Drain removes: a second drain is empty.
  EXPECT_TRUE(engine.Drain().empty());
}

TEST(StreamEngineTest, RunBatchDetectsPlantedChanges) {
  StreamEngine engine(SmallEngine(4));
  ASSERT_TRUE(engine.init_status().ok());
  std::map<std::string, BagSequence> streams;
  streams["changing-a"] = JumpStream(30, 15, 1);
  streams["changing-b"] = JumpStream(30, 15, 2);
  streams["stationary"] = JumpStream(30, 0, 3);
  auto batch = engine.RunBatch(streams);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), 3u);
  for (const char* key : {"changing-a", "changing-b"}) {
    const std::vector<StepResult>& series = batch->at(key);
    ASSERT_EQ(series.size(), 30u - 8u + 1u);
    std::vector<std::uint64_t> alarms = AlarmTimes(series);
    ASSERT_FALSE(alarms.empty()) << key;
    for (std::uint64_t a : alarms) {
      EXPECT_GE(a, 13u) << key;
      EXPECT_LE(a, 18u) << key;
    }
  }
  EXPECT_TRUE(AlarmTimes(batch->at("stationary")).empty());
}

TEST(StreamEngineTest, CallbackDeliversResultsOnShardThreads) {
  StreamEngine engine(SmallEngine(2));
  std::atomic<int> callbacks{0};
  engine.set_callback([&](const StreamStepResult& r) {
    EXPECT_FALSE(r.stream_id.empty());
    callbacks.fetch_add(1);
  });
  BagSequence bags = JumpStream(12, 0, 5);
  for (const Bag& bag : bags) {
    ASSERT_TRUE(engine.Submit("cb", bag).ok());
  }
  engine.Flush();
  EXPECT_EQ(callbacks.load(), 5);
  // Callback mode bypasses the drainable queue.
  EXPECT_TRUE(engine.Drain().empty());
}

TEST(StreamEngineTest, QuarantinesFailingStreamOnly) {
  StreamEngine engine(SmallEngine(2));
  // A ragged bag (mismatched dimensions) fails the stream.
  Bag ragged = {{1.0, 2.0}, {3.0}};
  ASSERT_TRUE(engine.Submit("bad", ragged).ok());
  BagSequence good_bags = JumpStream(12, 0, 6);
  for (const Bag& bag : good_bags) {
    ASSERT_TRUE(engine.Submit("good", bag).ok());
    ASSERT_TRUE(engine.Submit("bad", bag).ok());  // Dropped after failure.
  }
  engine.Flush();
  auto errors = engine.DrainErrors();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors.front().first, "bad");
  EXPECT_FALSE(errors.front().second.ok());
  EXPECT_EQ(engine.dropped_count(), 12u);
  // The healthy stream was unaffected.
  std::vector<StreamStepResult> results = engine.Drain();
  EXPECT_EQ(results.size(), 5u);
  for (const StreamStepResult& r : results) EXPECT_EQ(r.stream_id, "good");
}

TEST(StreamEngineTest, RunBatchRefusesStreamsQuarantinedEarlier) {
  // A stream that failed during online traffic must fail a later batch that
  // includes it, not silently return an empty series.
  StreamEngine engine(SmallEngine(2));
  Bag ragged = {{1.0, 2.0}, {3.0}};
  ASSERT_TRUE(engine.Submit("poisoned", ragged).ok());
  engine.Flush();
  std::map<std::string, BagSequence> streams;
  streams["poisoned"] = JumpStream(12, 0, 8);
  streams["fresh"] = JumpStream(12, 0, 9);
  Result<std::map<std::string, std::vector<StepResult>>> batch =
      engine.RunBatch(streams);
  ASSERT_FALSE(batch.ok());
  EXPECT_NE(batch.status().ToString().find("poisoned"), std::string::npos);
  // Without the quarantined key the batch goes through.
  streams.erase("poisoned");
  EXPECT_TRUE(engine.RunBatch(streams).ok());
}

TEST(StreamEngineTest, SubmitAfterShutdownFails) {
  StreamEngine engine(SmallEngine(2));
  engine.Shutdown();
  EXPECT_FALSE(engine.Submit("x", JumpStream(1, 0, 7).front()).ok());
}

TEST(StreamEngineTest, BackpressureDoesNotDeadlockTinyQueues) {
  StreamEngineOptions options = SmallEngine(2);
  options.shard_queue_capacity = 1;
  StreamEngine engine(options);
  for (std::size_t s = 0; s < 4; ++s) {
    BagSequence bags = JumpStream(15, 0, 200 + s);
    for (const Bag& bag : bags) {
      ASSERT_TRUE(engine.Submit("k" + std::to_string(s), bag).ok());
    }
  }
  engine.Flush();
  EXPECT_EQ(engine.processed_count(), 60u);
}

}  // namespace
}  // namespace bagcpd
