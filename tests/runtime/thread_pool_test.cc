#include "bagcpd/runtime/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace bagcpd {
namespace {

TEST(ThreadPoolTest, ZeroThreadsRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  int counter = 0;
  pool.Submit([&] { ++counter; });
  // Inline execution: visible immediately, no synchronization needed.
  EXPECT_EQ(counter, 1);
  pool.ParallelFor(0, 10, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter, 11);
}

TEST(ThreadPoolTest, SubmitExecutesAllTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&] { counter.fetch_add(1); });
    }
    // Destructor drains the queues before joining.
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, SubmitToSameShardPreservesFifoOrder) {
  std::vector<int> order;
  std::mutex mu;
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      pool.SubmitTo(1, [&, i] {
        std::lock_guard<std::mutex> lock(mu);
        order.push_back(i);
      });
    }
  }
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (std::size_t threads : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                              std::size_t{8}}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h.store(0);
    pool.ParallelFor(0, hits.size(),
                     [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndTinyRanges) {
  ThreadPool pool(4);
  int counter = 0;
  pool.ParallelFor(5, 5, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter, 0);
  std::atomic<int> one{0};
  pool.ParallelFor(7, 8, [&](std::size_t i) {
    EXPECT_EQ(i, 7u);
    one.fetch_add(1);
  });
  EXPECT_EQ(one.load(), 1);
}

TEST(ThreadPoolTest, ParallelForChunkedPartitionsRange) {
  ThreadPool pool(3);
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.ParallelForChunked(10, 110, [&](std::size_t b, std::size_t e) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(b, e);
  });
  std::sort(chunks.begin(), chunks.end());
  ASSERT_FALSE(chunks.empty());
  EXPECT_LE(chunks.size(), 4u);  // At most size() + 1 chunks.
  EXPECT_EQ(chunks.front().first, 10u);
  EXPECT_EQ(chunks.back().second, 110u);
  for (std::size_t c = 1; c < chunks.size(); ++c) {
    EXPECT_EQ(chunks[c].first, chunks[c - 1].second);  // Contiguous, disjoint.
  }
}

TEST(ThreadPoolTest, ParallelForRunsConcurrentTasksToCompletion) {
  // A body that blocks until all chunks have started would deadlock if the
  // pool lost tasks; with enough threads it must complete.
  ThreadPool pool(2);
  std::atomic<long> total{0};
  pool.ParallelFor(0, 1000, [&](std::size_t i) {
    total.fetch_add(static_cast<long>(i));
  });
  EXPECT_EQ(total.load(), 999L * 1000L / 2);
}

TEST(ThreadPoolTest, NestedParallelForFromWorkerFallsBackInline) {
  // Regression: a ParallelFor issued from inside one of the pool's own tasks
  // used to queue chunks behind the very worker that was blocking on them —
  // a deadlock whenever the inner range spilled onto the caller's shard.
  // The pool now detects re-entrancy and runs the inner loop inline; every
  // inner index must still run exactly once.
  ThreadPool pool(2);
  constexpr std::size_t kOuter = 8;
  constexpr std::size_t kInner = 32;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(0, kOuter, [&](std::size_t outer) {
    pool.ParallelFor(0, kInner, [&](std::size_t inner) {
      hits[outer * kInner + inner].fetch_add(1);
    });
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, NestedSubmitDetectionOnlyAppliesToOwningPool) {
  // A worker of pool A calling ParallelFor on pool B must still parallelize
  // on B — the inline fallback is scoped to re-entrancy on the same pool.
  ThreadPool outer(1);
  ThreadPool inner(2);
  std::atomic<int> ran{0};
  std::atomic<bool> outer_was_worker{false};
  std::atomic<bool> saw_inner_worker{false};
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  outer.SubmitTo(0, [&] {
    outer_was_worker.store(outer.InWorkerThread() && !inner.InWorkerThread());
    inner.ParallelFor(0, 64, [&](std::size_t) {
      if (inner.InWorkerThread()) saw_inner_worker.store(true);
      ran.fetch_add(1);
    });
    std::lock_guard<std::mutex> lock(mu);
    done = true;
    cv.notify_all();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done; });
  EXPECT_TRUE(outer_was_worker.load());
  EXPECT_EQ(ran.load(), 64);
  EXPECT_TRUE(saw_inner_worker.load());
}

}  // namespace
}  // namespace bagcpd
