#include "bagcpd/info/estimators.h"

#include <cmath>

#include <gtest/gtest.h>

#include "bagcpd/emd/emd.h"

namespace bagcpd {
namespace {

Signature PointMass(double x) {
  return Signature::FromCenters({{x}}, {1.0});
}

WeightedSignatureSet UniformSet(std::vector<double> positions) {
  std::vector<Signature> sigs;
  for (double x : positions) sigs.push_back(PointMass(x));
  return WeightedSignatureSet::Uniform(std::move(sigs));
}

TEST(WeightedSetTest, UniformConstruction) {
  WeightedSignatureSet set = UniformSet({0.0, 1.0, 2.0, 3.0});
  EXPECT_TRUE(set.Validate().ok());
  EXPECT_DOUBLE_EQ(set.weights[0], 0.25);
}

TEST(WeightedSetTest, ValidateRejectsBadWeights) {
  WeightedSignatureSet set = UniformSet({0.0, 1.0});
  set.weights = {0.7, 0.7};
  EXPECT_FALSE(set.Validate().ok());
  set.weights = {-0.5, 1.5};
  EXPECT_FALSE(set.Validate().ok());
  set.weights = {0.5};
  EXPECT_FALSE(set.Validate().ok());
}

TEST(WeightedSetTest, DiscountWeightsShape) {
  // toward_end = true: newest (closest to t) last => weights increase.
  std::vector<double> ref = DiscountWeights(4, true);
  EXPECT_LT(ref[0], ref[3]);
  // toward_end = false: newest first => weights decrease.
  std::vector<double> test = DiscountWeights(4, false);
  EXPECT_GT(test[0], test[3]);
  double total = 0.0;
  for (double w : ref) total += w;
  EXPECT_NEAR(total, 1.0, 1e-12);
  // Hyperbolic profile: 1, 1/2, 1/3, 1/4 normalized.
  const double z = 1.0 + 0.5 + 1.0 / 3.0 + 0.25;
  EXPECT_NEAR(test[0], 1.0 / z, 1e-12);
  EXPECT_NEAR(test[2], (1.0 / 3.0) / z, 1e-12);
}

TEST(EstimatorsTest, InformationContentHandValue) {
  // S at x=0; S' = {x=1 (gamma 0.5), x=e (gamma 0.5)}.
  // I = 0.5 log(1) + 0.5 log(e) = 0.5.
  Signature s = PointMass(0.0);
  WeightedSignatureSet sp = UniformSet({1.0, std::exp(1.0)});
  Result<double> info = InformationContent(s, sp);
  ASSERT_TRUE(info.ok());
  EXPECT_NEAR(info.ValueOrDie(), 0.5, 1e-9);
}

TEST(EstimatorsTest, InformationContentScalesWithD) {
  Signature s = PointMass(0.0);
  WeightedSignatureSet sp = UniformSet({std::exp(1.0), std::exp(1.0)});
  InfoEstimatorOptions options;
  options.c = 2.0;
  options.d = 3.0;
  Result<double> info =
      InformationContent(s, sp, GroundDistance::kEuclidean, options);
  ASSERT_TRUE(info.ok());
  EXPECT_NEAR(info.ValueOrDie(), 2.0 + 3.0 * 1.0, 1e-9);
}

TEST(EstimatorsTest, AutoEntropyHandValue) {
  // Three point masses at 0, 1, 3 with uniform weights 1/3.
  // H = sum_i (gamma_i / (1 - gamma_i)) sum_{j != i} gamma_j log d_ij
  //   = (1/3)/(2/3) * (1/3) * [sum over ordered pairs of log d_ij]
  // Ordered pairs: (0,1):0, (0,3):log3, (1,0):0, (1,3):log2, (3,0):log3,
  // (3,1):log2 => total = 2 log 3 + 2 log 2.
  WeightedSignatureSet set = UniformSet({0.0, 1.0, 3.0});
  Result<double> h = AutoEntropy(set);
  ASSERT_TRUE(h.ok());
  const double expected = 0.5 * (1.0 / 3.0) * (2.0 * std::log(3.0) +
                                               2.0 * std::log(2.0));
  EXPECT_NEAR(h.ValueOrDie(), expected, 1e-9);
}

TEST(EstimatorsTest, AutoEntropyNeedsTwoElements) {
  WeightedSignatureSet set = UniformSet({0.0});
  EXPECT_FALSE(AutoEntropy(set).ok());
}

TEST(EstimatorsTest, CrossEntropyHandValue) {
  // S = {0} (gamma 1 is disallowed by auto-entropy but fine for cross):
  // use S = {0, 0.0} ... simpler: S = {0, 4} uniform; S' = {1, 2} uniform.
  // H(S,S') = 1/4 [log1 + log2 + log3 + log2] = 1/4 log 12.
  WeightedSignatureSet s = UniformSet({0.0, 4.0});
  WeightedSignatureSet sp = UniformSet({1.0, 2.0});
  Result<double> h = CrossEntropy(s, sp);
  ASSERT_TRUE(h.ok());
  EXPECT_NEAR(h.ValueOrDie(), 0.25 * std::log(12.0), 1e-9);
}

TEST(EstimatorsTest, CrossEntropyIsSymmetric) {
  WeightedSignatureSet s = UniformSet({0.0, 1.5, 4.0});
  WeightedSignatureSet sp = UniformSet({2.0, 3.0});
  EXPECT_NEAR(CrossEntropy(s, sp).ValueOrDie(),
              CrossEntropy(sp, s).ValueOrDie(), 1e-10);
}

TEST(EstimatorsTest, SymmetrizedKlDiscriminates) {
  // Two similar sets vs two different sets: KL should be larger across the
  // genuinely different pair.
  WeightedSignatureSet near_a = UniformSet({0.0, 0.5, 1.0});
  WeightedSignatureSet near_b = UniformSet({0.1, 0.6, 1.1});
  WeightedSignatureSet far = UniformSet({10.0, 10.5, 11.0});
  const double kl_near = SymmetrizedKl(near_a, near_b).ValueOrDie();
  const double kl_far = SymmetrizedKl(near_a, far).ValueOrDie();
  EXPECT_GT(kl_far, kl_near);
}

TEST(EstimatorsTest, LogDistancesAppliesFloor) {
  Matrix d(2, 2, 0.0);
  d(0, 1) = 1.0;
  d(1, 0) = 1.0;
  Matrix logd = LogDistances(d, 1e-6);
  EXPECT_NEAR(logd(0, 1), 0.0, 1e-12);
  EXPECT_NEAR(logd(0, 0), std::log(1e-6), 1e-9);
}

TEST(EstimatorsTest, MatrixLevelPrimitivesMatchConveniences) {
  WeightedSignatureSet s = UniformSet({0.0, 2.0, 5.0});
  WeightedSignatureSet sp = UniformSet({1.0, 3.0});
  // Matrix-level.
  Matrix cross(3, 2);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      cross(i, j) = ComputeEmd(s.signatures[i], sp.signatures[j]).ValueOrDie();
    }
  }
  const double h_matrix =
      CrossEntropyFromLog(LogDistances(cross), s.weights, sp.weights);
  const double h_direct = CrossEntropy(s, sp).ValueOrDie();
  EXPECT_NEAR(h_matrix, h_direct, 1e-10);
}

TEST(EstimatorsTest, UniformKeepsInvalidMembersForRecoverableValidate) {
  // The AoS Uniform shim must not abort on invalid member signatures: the
  // estimators report them through Status, as they always have.
  std::vector<Signature> sigs;
  sigs.push_back(PointMass(0.0));
  sigs.push_back(Signature::FromFlat({1.0}, 1, {0.0}));  // Zero weight.
  WeightedSignatureSet set = WeightedSignatureSet::Uniform(std::move(sigs));
  EXPECT_FALSE(set.Validate().ok());
  EXPECT_FALSE(AutoEntropy(set).ok());

  // Mixed dimensions cannot live in the shared buffers; Uniform must still
  // not abort — the error parks in gather_status and flows out as a Status.
  std::vector<Signature> mixed;
  mixed.push_back(PointMass(0.0));
  mixed.push_back(Signature::FromCenters({{1.0, 2.0}}, {1.0}));
  WeightedSignatureSet ragged = WeightedSignatureSet::Uniform(std::move(mixed));
  EXPECT_FALSE(ragged.gather_status.ok());
  EXPECT_FALSE(ragged.Validate().ok());
  EXPECT_FALSE(AutoEntropy(ragged).ok());
}

TEST(EstimatorsTest, InformationContentIsSingletonCrossEntropy) {
  // I(S; S') equals H(S'', S') with S'' the singleton weighted set {(S, 1)}
  // — a consistency identity between the two estimators.
  Signature s = PointMass(0.7);
  WeightedSignatureSet sp = UniformSet({1.5, 3.0, 6.0});
  WeightedSignatureSet singleton;
  singleton.signatures = SignatureSet::FromSignatures({s}).ValueOrDie();
  singleton.weights = {1.0};
  const double info = InformationContent(s, sp).ValueOrDie();
  const double cross = CrossEntropy(singleton, sp).ValueOrDie();
  EXPECT_NEAR(info, cross, 1e-10);
}

TEST(EstimatorsTest, EstimatorsAreWeightLinear) {
  // Cross-entropy is bilinear in the weight vectors: doubling one element's
  // weight (and renormalizing) interpolates the per-row contributions.
  WeightedSignatureSet s = UniformSet({0.0, 4.0});
  WeightedSignatureSet sp = UniformSet({1.0, 2.0});
  const double base = CrossEntropy(s, sp).ValueOrDie();
  WeightedSignatureSet skewed = s;
  skewed.weights = {1.0, 0.0};
  const double row0 = CrossEntropy(skewed, sp).ValueOrDie();
  skewed.weights = {0.0, 1.0};
  const double row1 = CrossEntropy(skewed, sp).ValueOrDie();
  EXPECT_NEAR(base, 0.5 * row0 + 0.5 * row1, 1e-10);
}

TEST(EstimatorsTest, AutoEntropySkipsDegenerateGamma) {
  // gamma = (1, 0): the i = 0 term has denominator 0 and must be skipped
  // without producing inf/nan.
  Matrix logd(2, 2, 0.0);
  logd(0, 1) = 1.0;
  logd(1, 0) = 1.0;
  const double h = AutoEntropyFromLog(logd, {1.0, 0.0});
  EXPECT_TRUE(std::isfinite(h));
}

}  // namespace
}  // namespace bagcpd
