#include "bagcpd/analysis/metrics.h"

#include <gtest/gtest.h>

namespace bagcpd {
namespace {

TEST(MetricsTest, PerfectDetection) {
  DetectionReport r = EvaluateAlarms({10, 20}, {10, 20}, 2);
  EXPECT_EQ(r.true_positives, 2u);
  EXPECT_EQ(r.false_positives, 0u);
  EXPECT_EQ(r.missed, 0u);
  EXPECT_DOUBLE_EQ(r.precision, 1.0);
  EXPECT_DOUBLE_EQ(r.recall, 1.0);
  EXPECT_DOUBLE_EQ(r.f1, 1.0);
  EXPECT_DOUBLE_EQ(r.mean_delay, 0.0);
}

TEST(MetricsTest, DelayedDetectionWithinTolerance) {
  DetectionReport r = EvaluateAlarms({12, 23}, {10, 20}, 3);
  EXPECT_EQ(r.true_positives, 2u);
  EXPECT_DOUBLE_EQ(r.mean_delay, 2.5);
}

TEST(MetricsTest, EarlyAlarmDoesNotMatch) {
  // Alarms may only trail changes in the online setting.
  DetectionReport r = EvaluateAlarms({8}, {10}, 5);
  EXPECT_EQ(r.true_positives, 0u);
  EXPECT_EQ(r.false_positives, 1u);
  EXPECT_EQ(r.missed, 1u);
}

TEST(MetricsTest, LateAlarmOutsideToleranceIsFalsePositive) {
  DetectionReport r = EvaluateAlarms({17}, {10}, 5);
  EXPECT_EQ(r.true_positives, 0u);
  EXPECT_EQ(r.false_positives, 1u);
}

TEST(MetricsTest, EachTruthMatchedOnce) {
  // Two alarms near one change: one TP, one FP.
  DetectionReport r = EvaluateAlarms({10, 11}, {10}, 3);
  EXPECT_EQ(r.true_positives, 1u);
  EXPECT_EQ(r.false_positives, 1u);
  EXPECT_DOUBLE_EQ(r.precision, 0.5);
  EXPECT_DOUBLE_EQ(r.recall, 1.0);
}

TEST(MetricsTest, EmptyInputs) {
  DetectionReport none = EvaluateAlarms({}, {10}, 3);
  EXPECT_EQ(none.missed, 1u);
  EXPECT_DOUBLE_EQ(none.precision, 0.0);
  DetectionReport no_truth = EvaluateAlarms({5}, {}, 3);
  EXPECT_EQ(no_truth.false_positives, 1u);
  EXPECT_DOUBLE_EQ(no_truth.recall, 0.0);
}

TEST(MetricsTest, F1HarmonicMean) {
  DetectionReport r = EvaluateAlarms({10, 30}, {10, 20}, 2);
  EXPECT_DOUBLE_EQ(r.precision, 0.5);
  EXPECT_DOUBLE_EQ(r.recall, 0.5);
  EXPECT_DOUBLE_EQ(r.f1, 0.5);
}

TEST(RocAucTest, PerfectSeparation) {
  const double auc =
      RocAuc({0.1, 0.2, 0.9, 0.8}, {0, 0, 1, 1}).ValueOrDie();
  EXPECT_DOUBLE_EQ(auc, 1.0);
}

TEST(RocAucTest, ReversedSeparation) {
  const double auc =
      RocAuc({0.9, 0.8, 0.1, 0.2}, {0, 0, 1, 1}).ValueOrDie();
  EXPECT_DOUBLE_EQ(auc, 0.0);
}

TEST(RocAucTest, RandomScoresNearHalf) {
  const double auc =
      RocAuc({0.5, 0.5, 0.5, 0.5}, {0, 1, 0, 1}).ValueOrDie();
  EXPECT_DOUBLE_EQ(auc, 0.5);  // All ties -> midrank -> 0.5.
}

TEST(RocAucTest, KnownPartialValue) {
  // Scores: pos {3, 1}, neg {2, 0}: pairs won 3>2, 3>0, 1>0 = 3 of 4.
  const double auc = RocAuc({3.0, 1.0, 2.0, 0.0}, {1, 1, 0, 0}).ValueOrDie();
  EXPECT_DOUBLE_EQ(auc, 0.75);
}

TEST(RocAucTest, RejectsDegenerateInputs) {
  EXPECT_FALSE(RocAuc({1.0, 2.0}, {1, 1}).ok());
  EXPECT_FALSE(RocAuc({1.0, 2.0}, {0, 0}).ok());
  EXPECT_FALSE(RocAuc({1.0}, {0, 1}).ok());
}

TEST(LabelTest, LabelsWindowsAfterChangePoints) {
  std::vector<int> labels = LabelNearChangePoints(10, {3, 8}, 1);
  EXPECT_EQ(labels, (std::vector<int>{0, 0, 0, 1, 1, 0, 0, 0, 1, 1}));
}

TEST(LabelTest, TruncatesAtSeriesEnd) {
  std::vector<int> labels = LabelNearChangePoints(5, {4}, 3);
  EXPECT_EQ(labels, (std::vector<int>{0, 0, 0, 0, 1}));
}

}  // namespace
}  // namespace bagcpd
