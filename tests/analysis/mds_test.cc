#include "bagcpd/analysis/mds.h"

#include <cmath>

#include <gtest/gtest.h>

#include "bagcpd/common/point.h"

namespace bagcpd {
namespace {

Matrix DistanceMatrixOf(const std::vector<Point>& points) {
  Matrix d(points.size(), points.size(), 0.0);
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = 0; j < points.size(); ++j) {
      d(i, j) = EuclideanDistance(points[i], points[j]);
    }
  }
  return d;
}

TEST(MdsTest, RecoversLineConfiguration) {
  // Colinear points: distances recoverable in 1-d.
  std::vector<Point> points = {{0.0}, {1.0}, {3.0}, {7.0}};
  Matrix d = DistanceMatrixOf(points);
  MdsEmbedding emb = ClassicalMds(d, 2).ValueOrDie();
  // Pairwise distances of the embedding match the input.
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      Point a = {emb.coordinates(i, 0), emb.coordinates(i, 1)};
      Point b = {emb.coordinates(j, 0), emb.coordinates(j, 1)};
      EXPECT_NEAR(EuclideanDistance(a, b), d(i, j), 1e-8);
    }
  }
  // Second coordinate is (near) zero: the configuration is 1-dimensional.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(emb.coordinates(i, 1), 0.0, 1e-8);
  }
}

TEST(MdsTest, RecoversSquareConfiguration) {
  std::vector<Point> points = {{0.0, 0.0}, {1.0, 0.0}, {1.0, 1.0}, {0.0, 1.0}};
  Matrix d = DistanceMatrixOf(points);
  MdsEmbedding emb = ClassicalMds(d, 2).ValueOrDie();
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      Point a = {emb.coordinates(i, 0), emb.coordinates(i, 1)};
      Point b = {emb.coordinates(j, 0), emb.coordinates(j, 1)};
      EXPECT_NEAR(EuclideanDistance(a, b), d(i, j), 1e-8);
    }
  }
}

TEST(MdsTest, EigenvaluesDescending) {
  std::vector<Point> points = {{0.0, 0.0}, {2.0, 0.0}, {0.0, 1.0}, {3.0, 2.0}};
  MdsEmbedding emb = ClassicalMds(DistanceMatrixOf(points), 2).ValueOrDie();
  for (std::size_t k = 1; k < emb.eigenvalues.size(); ++k) {
    EXPECT_GE(emb.eigenvalues[k - 1], emb.eigenvalues[k] - 1e-9);
  }
}

TEST(MdsTest, SeparatesTwoClusters) {
  // Two groups with small within- and large between-distances: the first MDS
  // axis should separate them.
  Matrix d(6, 6, 0.0);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      if (i == j) continue;
      const bool same = (i < 3) == (j < 3);
      d(i, j) = same ? 1.0 : 10.0;
    }
  }
  MdsEmbedding emb = ClassicalMds(d, 2).ValueOrDie();
  // Group means on axis 0 are far apart.
  double g0 = 0.0, g1 = 0.0;
  for (std::size_t i = 0; i < 3; ++i) g0 += emb.coordinates(i, 0);
  for (std::size_t i = 3; i < 6; ++i) g1 += emb.coordinates(i, 0);
  EXPECT_GT(std::abs(g0 - g1) / 3.0, 5.0);
}

TEST(MdsTest, RejectsBadInput) {
  EXPECT_FALSE(ClassicalMds(Matrix(2, 3), 2).ok());
  Matrix asym = Matrix::FromRows({{0.0, 1.0}, {2.0, 0.0}});
  EXPECT_FALSE(ClassicalMds(asym, 1).ok());
  Matrix ok = Matrix::FromRows({{0.0, 1.0}, {1.0, 0.0}});
  EXPECT_FALSE(ClassicalMds(ok, 0).ok());
  EXPECT_FALSE(ClassicalMds(ok, 3).ok());
}

}  // namespace
}  // namespace bagcpd
