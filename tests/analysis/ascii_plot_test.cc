#include "bagcpd/analysis/ascii_plot.h"

#include <gtest/gtest.h>

namespace bagcpd {
namespace {

TEST(AsciiPlotTest, LineChartContainsMarkers) {
  std::vector<double> series = {0.0, 1.0, 2.0, 5.0, 2.0, 1.0};
  std::vector<double> lo = {-0.5, 0.5, 1.5, 4.0, 1.5, 0.5};
  std::vector<double> up = {0.5, 1.5, 2.5, 6.0, 2.5, 1.5};
  std::string chart = RenderLineChart(series, lo, up, {3}, {2});
  EXPECT_NE(chart.find('*'), std::string::npos);
  EXPECT_NE(chart.find('X'), std::string::npos);
  EXPECT_NE(chart.find('.'), std::string::npos);
  EXPECT_NE(chart.find(':'), std::string::npos);
  EXPECT_NE(chart.find("legend"), std::string::npos);
}

TEST(AsciiPlotTest, LineChartWithoutBand) {
  std::vector<double> series = {1.0, 2.0, 3.0};
  std::string chart = RenderLineChart(series, {}, {}, {}, {});
  EXPECT_NE(chart.find('*'), std::string::npos);
  // No alarm mark inside the plot grid (the legend line mentions 'X').
  const std::string grid = chart.substr(0, chart.find("legend"));
  EXPECT_EQ(grid.find('X'), std::string::npos);
}

TEST(AsciiPlotTest, EmptySeriesIsSafe) {
  EXPECT_EQ(RenderLineChart({}, {}, {}, {}, {}), "(empty series)\n");
}

TEST(AsciiPlotTest, ConstantSeriesIsSafe) {
  std::string chart = RenderLineChart({2.0, 2.0, 2.0}, {}, {}, {}, {});
  EXPECT_NE(chart.find('*'), std::string::npos);
}

TEST(AsciiPlotTest, HeatMapUsesShades) {
  Matrix m(4, 4, 0.0);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      m(i, j) = static_cast<double>(i + j);
    }
  }
  std::string map = RenderHeatMap(m);
  EXPECT_NE(map.find('@'), std::string::npos);  // Max shade present.
  EXPECT_NE(map.find("scale"), std::string::npos);
}

TEST(AsciiPlotTest, HeatMapEmptyMatrix) {
  EXPECT_EQ(RenderHeatMap(Matrix()), "(empty matrix)\n");
}

TEST(AsciiPlotTest, ScatterShowsBothHalves) {
  Matrix coords(4, 2, 0.0);
  coords(0, 0) = 0.0;
  coords(1, 0) = 1.0;
  coords(2, 0) = 2.0;
  coords(3, 0) = 3.0;
  for (std::size_t i = 0; i < 4; ++i) coords(i, 1) = static_cast<double>(i);
  std::string plot = RenderScatter2d(coords);
  EXPECT_NE(plot.find('1'), std::string::npos);  // First half digits.
  EXPECT_NE(plot.find('a'), std::string::npos);  // Second half letters.
}

TEST(AsciiPlotTest, SparklineLengthMatchesSeries) {
  std::vector<double> series = {0.0, 1.0, 2.0, 3.0};
  EXPECT_EQ(RenderSparkline(series).size(), 4u);
  EXPECT_EQ(RenderSparkline({}), "");
}

}  // namespace
}  // namespace bagcpd
